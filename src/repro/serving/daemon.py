"""The `repro serve` daemon: asyncio TCP front, micro-batched oracle back.

One :class:`OracleServer` owns a built
:class:`~repro.oracle.tables.DistanceOracle` and serves the wire
protocol of :mod:`repro.serving.protocol` on a TCP socket.  The request
path is:

1. a connection handler parses one request line and checks each pair
   against the :class:`~repro.serving.cache.AnswerCache` (key
   ``(op, s, t)``);
2. cache misses are enqueued into the
   :class:`~repro.serving.batcher.MicroBatcher` as request chunks of at
   most ``max_batch`` pairs (one future per chunk, so large requests
   cost O(1) futures); the batch flushes when it accumulates
   ``max_batch`` pairs or ``max_wait_us`` after its first pair,
   whichever is first;
3. the flushed batch is answered by the existing batched query engine —
   directly on the event loop when ``workers == 0``, or in one of N
   worker processes that attached the daemon's shared-memory tables
   (:mod:`repro.serving.shm`) when ``workers > 0``;
4. the handler awaits its futures, fills the cache, and writes the
   response line.

Telemetry (when an ambient trace is configured or one is passed in):
``serve.request`` / ``serve.batch`` spans, plus the mergeable
``serve.request_seconds`` / ``serve.batch_seconds`` latency histograms
(:mod:`repro.telemetry.hist`) that the ``stats`` op and the trace
summary report.

:class:`ServerThread` hosts the daemon inside another process (tests,
benchmarks, the serving adapter) without blocking the caller;
:func:`run_server` is the blocking entry point the CLI uses.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter

from ..errors import ParameterError, ReproError
from ..oracle.tables import DistanceOracle
from ..telemetry import Telemetry, maybe_span, resolve
from .batcher import MicroBatcher
from .cache import MISS, AnswerCache
from .protocol import OPS, ProtocolError, decode_line, encode_message, parse_pairs
from .shm import ShmOracleTables
from .workers import worker_answer, worker_init

__all__ = ["ServerConfig", "OracleServer", "ServerThread", "run_server", "default_workers"]


def default_workers() -> int:
    """Worker-pool size from ``REPRO_SERVE_WORKERS`` (default 0: in-process)."""
    setting = os.environ.get("REPRO_SERVE_WORKERS", "").strip()
    if not setting:
        return 0
    try:
        workers = int(setting)
    except ValueError as exc:
        raise ParameterError(
            f"REPRO_SERVE_WORKERS must be an integer, got {setting!r}"
        ) from exc
    if workers < 0:
        raise ParameterError(f"REPRO_SERVE_WORKERS must be >= 0, got {workers}")
    return workers


@dataclass(frozen=True)
class ServerConfig:
    """Daemon knobs (all mirrored as ``repro serve`` flags).

    ``port=0`` binds an ephemeral port (the bound address is reported via
    :attr:`OracleServer.address` / the ``--ready-file``).  ``workers=0``
    answers batches on the event loop of the daemon process itself —
    deterministic and dependency-free; ``workers=N`` fans batches out to
    ``N`` processes sharing the tables through one shared-memory segment.
    ``cache_size=0`` disables the answer cache.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 64
    max_wait_us: int = 500
    cache_size: int = 4096
    workers: int = 0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ParameterError(f"workers must be >= 0, got {self.workers}")
        # max_batch / max_wait_us / cache_size are validated by the
        # MicroBatcher and AnswerCache constructors.


class OracleServer:
    """One serving daemon instance (see module docstring for the path)."""

    def __init__(
        self,
        oracle: DistanceOracle,
        config: ServerConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.oracle = oracle
        self.config = config or ServerConfig()
        self.telemetry = resolve(telemetry)
        self.cache = AnswerCache(self.config.cache_size)
        self.batcher = MicroBatcher(self.config.max_batch, self.config.max_wait_us)
        self.counters = {
            "requests": 0,
            "batches": 0,
            "batched_pairs": 0,
            "largest_batch": 0,
            "errors": 0,
        }
        self.address: tuple[str, int] | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._timer: asyncio.TimerHandle | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._shm: ShmOracleTables | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._batch_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind the socket (and spin up workers); returns ``(host, port)``."""
        if self._server is not None:
            raise ReproError("server is already started")
        if self.config.workers > 0:
            self._shm = ShmOracleTables.create(self.oracle)
            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers,
                mp_context=multiprocessing.get_context("spawn"),
                initializer=worker_init,
                initargs=(self._shm.name,),
            )
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (must run on the event loop)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve(self, ready_callback=None) -> None:
        """Start, report readiness, and block until :meth:`request_stop`."""
        host, port = await self.start()
        if ready_callback is not None:
            ready_callback(host, port)
        try:
            await self._stop_event.wait()
        finally:
            await self._shutdown()

    async def _shutdown(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        # Answer whatever is still queued so in-flight handlers can
        # respond before their connections wind down.
        items = self.batcher.drain()
        if items:
            await self._run_batch(items)
        if self._batch_tasks:
            await asyncio.gather(*self._batch_tasks, return_exceptions=True)
        if self._conn_tasks:
            done, pending = await asyncio.wait(self._conn_tasks, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        stop_after = False
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response, stop_after = await self._respond(line)
                writer.write(encode_message(response))
                await writer.drain()
                if stop_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            if stop_after:
                self.request_stop()

    async def _respond(self, line: bytes) -> tuple[dict, bool]:
        """One response dict for one request line, plus a stop flag."""
        request_id = None
        self.counters["requests"] += 1
        try:
            message = decode_line(line)
            request_id = message.get("id")
            op = message.get("op")
            if op not in OPS:
                raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
            if op == "ping":
                return {"id": request_id, "ok": True, "op": "ping"}, False
            if op == "shutdown":
                return {"id": request_id, "ok": True, "op": "shutdown"}, True
            if op == "stats":
                return (
                    {"id": request_id, "ok": True, "op": "stats", "stats": self.stats()},
                    False,
                )
            answers = await self._answer_query(op, parse_pairs(message))
            field = "estimates" if op == "distance" else "routes"
            return {"id": request_id, "ok": True, "op": op, field: answers}, False
        except ReproError as exc:
            self.counters["errors"] += 1
            return {"id": request_id, "ok": False, "error": str(exc)}, False

    async def _answer_query(self, op: str, pairs) -> list:
        started = perf_counter()
        n = self.oracle.graph.num_vertices
        for s, t in pairs:
            if not (0 <= s < n and 0 <= t < n):
                raise ProtocolError(f"pair ({s}, {t}) out of range [0, {n})")
        with maybe_span(self.telemetry, "serve.request", op=op) as span:
            answers: list = [None] * len(pairs)
            misses: list[int] = []
            for i, (s, t) in enumerate(pairs):
                value = self.cache.get((op, s, t))
                if value is MISS:
                    misses.append(i)
                else:
                    answers[i] = value
            if misses:
                # One future per <= max_batch chunk (not per pair): the
                # chunking keeps max_batch an engine-call bound while a
                # large request costs O(1) futures, not O(pairs).
                miss_pairs = [pairs[i] for i in misses]
                chunk_size = self.batcher.max_batch
                waiting = [
                    (start, self._enqueue(op, miss_pairs[start : start + chunk_size]))
                    for start in range(0, len(miss_pairs), chunk_size)
                ]
                await asyncio.gather(*(future for _, future in waiting))
                for start, future in waiting:
                    for offset, answer in enumerate(future.result()):
                        i = misses[start + offset]
                        answers[i] = answer
                        self.cache.put((op, *pairs[i]), answer)
            if span is not None:
                span.add("pairs", len(pairs))
                span.add("cache_hits", len(pairs) - len(misses))
        if self.telemetry is not None:
            self.telemetry.histogram("serve.request_seconds").record(
                perf_counter() - started
            )
        return answers

    # ------------------------------------------------------------------
    # Micro-batching
    # ------------------------------------------------------------------
    def _enqueue(self, op: str, pairs: list) -> asyncio.Future:
        """Queue one request chunk; the future resolves to its answer list."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        full = self.batcher.add((op, pairs, future), loop.time(), weight=len(pairs))
        if full:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.batcher.wait_seconds, self._on_timer)
        return future

    def _on_timer(self) -> None:
        self._timer = None
        self._flush()

    def _flush(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        items = self.batcher.drain()
        if not items:
            return
        task = asyncio.get_running_loop().create_task(self._run_batch(items))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, items: list) -> None:
        total_pairs = sum(len(pairs) for _, pairs, _ in items)
        self.counters["batches"] += 1
        self.counters["batched_pairs"] += total_pairs
        self.counters["largest_batch"] = max(
            self.counters["largest_batch"], total_pairs
        )
        # One flushed batch may mix ops; answer each op's chunks as one
        # engine call, preserving enqueue order within the op.
        groups: dict[str, list] = {}
        for op, pairs, future in items:
            groups.setdefault(op, []).append((pairs, future))
        for op, group in groups.items():
            flat = [pair for pairs, _ in group for pair in pairs]
            try:
                with maybe_span(self.telemetry, "serve.batch", op=op) as span:
                    started = perf_counter()
                    answers = await self._answer_batch(op, flat)
                    elapsed = perf_counter() - started
                    if span is not None:
                        span.add("pairs", len(flat))
                if self.telemetry is not None:
                    self.telemetry.histogram("serve.batch_seconds").record(elapsed)
            except Exception as exc:
                for _, future in group:
                    if not future.done():
                        future.set_exception(
                            exc if isinstance(exc, ReproError)
                            else ReproError(f"batch failed: {exc}")
                        )
                continue
            offset = 0
            for pairs, future in group:
                if not future.done():
                    future.set_result(answers[offset : offset + len(pairs)])
                offset += len(pairs)

    async def _answer_batch(self, op: str, pairs: list) -> list:
        if self._executor is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, worker_answer, op, pairs
            )
        return worker_answer_direct(self.oracle, op, pairs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The ``stats`` op payload: identity, knobs, counters, cache."""
        return {
            "n": self.oracle.graph.num_vertices,
            "m": self.oracle.graph.num_edges,
            "scales": self.oracle.num_scales,
            "seed": self.oracle.seed,
            "stretch_bound": self.oracle.stretch_bound,
            "workers": self.config.workers,
            "max_batch": self.config.max_batch,
            "max_wait_us": self.config.max_wait_us,
            **self.counters,
            "cache": self.cache.stats(),
        }


def worker_answer_direct(oracle: DistanceOracle, op: str, pairs: list) -> list:
    """The ``workers == 0`` answer path: same dispatch, local oracle."""
    if op == "distance":
        return oracle.distances(pairs)
    if op == "route":
        return oracle.routes(pairs)
    raise ReproError(f"unknown batch op {op!r}")


def run_server(
    oracle: DistanceOracle,
    config: ServerConfig | None = None,
    telemetry: Telemetry | None = None,
    ready_callback=None,
) -> None:
    """Blocking daemon entry point (the CLI's ``repro serve``)."""
    server = OracleServer(oracle, config, telemetry=telemetry)
    asyncio.run(server.serve(ready_callback=ready_callback))


class ServerThread:
    """Host an :class:`OracleServer` on a background thread.

    The constructor arguments mirror :class:`OracleServer`.  Use as a
    context manager: ``__enter__`` starts the daemon and returns once the
    socket is bound (:attr:`address` is then set); ``__exit__`` stops it
    and joins the thread.  Startup failures re-raise in the caller.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        config: ServerConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.server = OracleServer(oracle, config, telemetry=telemetry)
        self.address: tuple[str, int] | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve", daemon=True
        )

    def _main(self) -> None:
        try:
            asyncio.run(self._async_main())
        except BaseException as exc:  # startup or serve failure
            self._error = exc
        finally:
            self._ready.set()

    async def _async_main(self) -> None:
        self._loop = asyncio.get_running_loop()

        def on_ready(host: str, port: int) -> None:
            self.address = (host, port)
            self._ready.set()

        await self.server.serve(ready_callback=on_ready)

    def start(self) -> tuple[str, int]:
        """Start the daemon; returns the bound ``(host, port)``."""
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            raise self._error
        if self.address is None:
            raise ReproError("serving thread did not become ready")
        return self.address

    def stop(self) -> None:
        """Stop the daemon and join the thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread.is_alive():
            self._thread.join(timeout=30)
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
