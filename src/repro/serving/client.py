"""Blocking client for the serving protocol (loadgen, tests, scripts).

One :class:`ServeClient` is one TCP connection speaking the
newline-delimited JSON protocol of :mod:`repro.serving.protocol`,
strictly request/response (no pipelining): every call sends one line,
reads one line, and checks that the echoed ``id`` matches.  Not
thread-safe — the load generator gives each worker thread its own
client, which is also how it measures per-connection latency honestly.
"""

from __future__ import annotations

import socket
from typing import List, Sequence, Tuple

from .protocol import ProtocolError, decode_line, encode_message

__all__ = ["ServeClient"]


class ServeClient:
    """A connected protocol client (use as a context manager)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Wire primitive
    # ------------------------------------------------------------------
    def request(self, op: str, **payload) -> dict:
        """Send one request, await its response, return the response dict.

        Raises :class:`ProtocolError` on transport EOF, a mismatched
        ``id`` echo, or an ``ok: false`` response (carrying the server's
        error text).
        """
        self._next_id += 1
        request_id = self._next_id
        message = {"id": request_id, "op": op}
        message.update(payload)
        self._sock.sendall(encode_message(message))
        line = self._reader.readline()
        if not line:
            raise ProtocolError(f"server closed the connection during {op!r}")
        response = decode_line(line)
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if not response.get("ok"):
            raise ProtocolError(
                f"server rejected {op!r}: {response.get('error', 'unknown error')}"
            )
        return response

    # ------------------------------------------------------------------
    # Typed operations
    # ------------------------------------------------------------------
    def distances(self, pairs: Sequence[Tuple[int, int]]) -> List[int]:
        """Batched distance estimates for ``pairs``."""
        return self.request("distance", pairs=[list(pair) for pair in pairs])[
            "estimates"
        ]

    def routes(self, pairs: Sequence[Tuple[int, int]]) -> List:
        """Batched explicit routes for ``pairs`` (``None`` when unreachable)."""
        return self.request("route", pairs=[list(pair) for pair in pairs])["routes"]

    def stats(self) -> dict:
        """The server's ``stats`` payload."""
        return self.request("stats")["stats"]

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return bool(self.request("ping").get("ok"))

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged before it winds down)."""
        self.request("shutdown")

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
