"""The wire protocol: newline-delimited JSON over TCP.

One request per line, one response line per request, in order.  The
format is deliberately boring — any language with sockets and JSON can
speak it — and is documented normatively in ``docs/serving.md``.

Request::

    {"id": 7, "op": "distance", "pairs": [[0, 5], [3, 3]]}

``op`` is one of ``distance`` / ``route`` (both take ``pairs``),
``stats`` / ``ping`` / ``shutdown`` (no payload).  ``id`` is echoed
verbatim in the response so clients can pipeline.

Response::

    {"id": 7, "ok": true, "op": "distance", "estimates": [4, 0]}

``ok: false`` responses carry ``error`` instead of a payload; the
connection stays usable (a malformed line never kills the session).
"""

from __future__ import annotations

import json
from typing import Sequence, Tuple

from ..errors import ReproError

__all__ = ["ProtocolError", "OPS", "decode_line", "encode_message", "parse_pairs"]

#: The operations a request may name.
OPS = ("distance", "route", "stats", "ping", "shutdown")


class ProtocolError(ReproError):
    """Raised for malformed request/response lines (reported, not fatal)."""


def encode_message(message: dict) -> bytes:
    """One compact JSON line, ready for the socket."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf8")


def decode_line(line: bytes | str) -> dict:
    """Parse one wire line into a dict or raise :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf8", errors="replace")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"line is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object per line, got {type(message).__name__}"
        )
    return message


def parse_pairs(message: dict) -> Sequence[Tuple[int, int]]:
    """Validate and normalise the ``pairs`` payload of a query request.

    Vertex-range checking is the oracle's job (it knows ``n``); this
    only enforces the wire shape: a list of two-int pairs.
    """
    pairs = message.get("pairs")
    if not isinstance(pairs, list):
        raise ProtocolError("request needs a 'pairs' list of [s, t] pairs")
    parsed = []
    for entry in pairs:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or not all(isinstance(v, int) and not isinstance(v, bool) for v in entry)
        ):
            raise ProtocolError(f"bad pair {entry!r} (expected [s, t] ints)")
        parsed.append((entry[0], entry[1]))
    return parsed
