"""Size-bounded LRU answer cache fronting the serving daemon.

Served answers are pure functions of ``(op, s, t)`` for a fixed oracle:
the tables are immutable after build, so a cached answer never goes
stale and the cache needs no TTL.  Eviction is strict LRU over an
:class:`collections.OrderedDict`, which makes the hit/miss/eviction
counters — and therefore the serving scenario's cached records —
deterministic for any fixed request sequence (see
``docs/serving.md`` for the determinism caveats under concurrency).

``capacity=0`` disables caching entirely (every lookup is a miss and
nothing is stored), which is what the latency benchmarks use so the
micro-batching gate measures the batch engine, not the cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from ..errors import ParameterError

__all__ = ["AnswerCache", "MISS"]


class _Miss:
    """Sentinel distinct from every cacheable value (routes may be None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cache miss>"


#: Returned by :meth:`AnswerCache.get` when the key is absent.
MISS = _Miss()


class AnswerCache:
    """LRU map from ``(op, s, t)`` keys to served answers.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    the least-recently-used entry once ``capacity`` is exceeded.  The
    three counters are cumulative over the cache's lifetime and feed the
    daemon's ``stats`` response and telemetry block.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ParameterError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> object:
        """The cached value for ``key``, or :data:`MISS` (counts either way)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return MISS

    def put(self, key: Hashable, value: object) -> None:
        """Insert ``key -> value``; evict LRU entries beyond capacity."""
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        """Counters + occupancy as one JSON-safe dict (the ``stats`` op)."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
