"""Micro-batcher: accumulate requests, flush on size or deadline.

The serving daemon's throughput comes from feeding the batched query
engine (:mod:`repro.oracle.query`) batches much larger than one pair —
but a request must never wait unboundedly for peers to share a batch
with.  The two flush rules (documented in ``docs/serving.md``):

* **size** — the batch reaches ``max_batch`` items: flush immediately;
* **deadline** — ``max_wait_us`` microseconds elapsed since the *first*
  item of the current batch was enqueued: flush whatever accumulated.

The deadline is anchored at the first enqueue (not refreshed per item),
so a steady trickle cannot starve the oldest request.  Items carry a
``weight`` (the daemon enqueues one item per request *chunk*, weighted
by its pair count, so ``max_batch`` bounds pairs per engine call while
a 16-pair request costs one future, not 16).  The class is pure
bookkeeping over caller-supplied clock readings — no asyncio, no
threads — which is what makes the flush semantics unit-testable without
sockets; the daemon wires :meth:`add`'s return value to an immediate
flush and :attr:`wait_seconds` to an event-loop timer.
"""

from __future__ import annotations

from typing import Any, List

from ..errors import ParameterError

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Accumulates weighted items until a size or deadline flush is due."""

    __slots__ = ("max_batch", "max_wait_us", "items", "size", "deadline")

    def __init__(self, max_batch: int, max_wait_us: int) -> None:
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ParameterError(f"max_wait_us must be >= 0, got {max_wait_us}")
        self.max_batch = int(max_batch)
        self.max_wait_us = int(max_wait_us)
        self.items: List[Any] = []
        self.size = 0
        self.deadline: float | None = None

    def __len__(self) -> int:
        return len(self.items)

    @property
    def wait_seconds(self) -> float:
        """The deadline window as seconds (for event-loop timers)."""
        return self.max_wait_us / 1e6

    def add(self, item: Any, now: float, weight: int = 1) -> bool:
        """Enqueue ``item`` (counting for ``weight``) at clock reading ``now``.

        Returns ``True`` when the batch just reached ``max_batch`` total
        weight — the caller must flush immediately.  The first item of
        an empty batch anchors the deadline at ``now + max_wait_us``.
        """
        if weight < 1:
            raise ParameterError(f"item weight must be >= 1, got {weight}")
        if not self.items:
            self.deadline = now + self.wait_seconds
        self.items.append(item)
        self.size += weight
        return self.size >= self.max_batch

    def should_flush(self, now: float) -> bool:
        """Whether either flush rule fires at clock reading ``now``."""
        if not self.items:
            return False
        return self.size >= self.max_batch or (
            self.deadline is not None and now >= self.deadline
        )

    def drain(self) -> List[Any]:
        """Take the accumulated batch and reset for the next one."""
        items, self.items = self.items, []
        self.size = 0
        self.deadline = None
        return items
