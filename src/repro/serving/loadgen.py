"""Load generation against a running daemon: closed- and open-loop.

Two standard load models, both built on threaded :class:`ServeClient`
connections and per-thread :class:`~repro.telemetry.hist.LogHistogram`
latency recorders that merge exactly into one report:

* **closed loop** (:func:`run_closed_loop`) — each of ``clients``
  connections keeps exactly one request in flight, sending the next the
  moment the previous answer lands.  Offered load adapts to the server,
  so the measured rate *is* the saturation throughput at that
  concurrency; latency under a closed loop is flattering by
  construction.
* **open loop** (:func:`run_open_loop`) — requests are launched on a
  fixed wall-clock schedule at ``rate`` per second regardless of how
  the server is doing, and each latency sample is measured from the
  request's *scheduled* send time, not its actual one.  A server that
  falls behind therefore shows the queueing delay in p99 instead of
  silently shedding load — the standard coordinated-omission fix.

Pair workloads are drawn from the library's seeded streams
(:mod:`repro.rng`), so two runs against equivalent servers issue the
identical request sequence.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter, sleep
from typing import List, Sequence, Tuple

from ..errors import ParameterError
from ..rng import stream
from ..telemetry.hist import LogHistogram, merge_all
from .client import ServeClient

__all__ = ["LoadReport", "sample_pairs", "run_closed_loop", "run_open_loop"]


def sample_pairs(
    n: int, count: int, seed: int, label: str = "loadgen"
) -> List[Tuple[int, int]]:
    """``count`` seeded uniform vertex pairs over ``range(n)``."""
    if n < 1:
        raise ParameterError(f"need n >= 1 to sample pairs, got {n}")
    rng = stream(seed, "serving", label)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


@dataclass
class LoadReport:
    """One load run: counts, wall time, and the merged latency histogram."""

    mode: str
    op: str
    connections: int
    requests: int
    pairs: int
    errors: int
    elapsed_seconds: float
    offered_rate: float | None = None
    hist: LogHistogram | None = None
    answers: list = field(default_factory=list, repr=False)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall time."""
        return self.requests / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def throughput_pairs(self) -> float:
        """Answered pairs per second of wall time (the saturation number)."""
        return self.pairs / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def quantile_us(self, q: float) -> float | None:
        """Latency quantile in microseconds (``None`` when empty)."""
        value = self.hist.quantile(q) if self.hist is not None else None
        return None if value is None else value * 1e6

    def row(self) -> dict:
        """One compare-ready benchmark row (timing columns ``*_us``)."""
        row = {
            "mode": self.mode,
            "op": self.op,
            "connections": self.connections,
            "requests": self.requests,
            "pairs": self.pairs,
            "errors": self.errors,
            "p50_us": self.quantile_us(0.50),
            "p99_us": self.quantile_us(0.99),
            "throughput q/s": round(self.throughput_pairs, 1),
        }
        if self.offered_rate is not None:
            row["offered q/s"] = round(self.offered_rate, 1)
        return row


def _chunk(
    pairs: Sequence[Tuple[int, int]], start: int, size: int
) -> List[Tuple[int, int]]:
    """``size`` pairs starting at ``start``, wrapping around the workload."""
    return [pairs[(start + j) % len(pairs)] for j in range(size)]


def run_closed_loop(
    host: str,
    port: int,
    pairs: Sequence[Tuple[int, int]],
    *,
    clients: int = 4,
    requests_per_client: int = 100,
    op: str = "distance",
    pairs_per_request: int = 1,
    keep_answers: bool = False,
    timeout: float = 60.0,
) -> LoadReport:
    """Closed-loop run: ``clients`` connections, one request in flight each."""
    if clients < 1:
        raise ParameterError(f"clients must be >= 1, got {clients}")
    if requests_per_client < 1:
        raise ParameterError(
            f"requests_per_client must be >= 1, got {requests_per_client}"
        )
    if pairs_per_request < 1:
        raise ParameterError(
            f"pairs_per_request must be >= 1, got {pairs_per_request}"
        )
    hists = [LogHistogram() for _ in range(clients)]
    errors = [0] * clients
    answers: list = [None] * clients
    barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        collected = [] if keep_answers else None
        with ServeClient(host, port, timeout=timeout) as client:
            call = client.distances if op == "distance" else client.routes
            barrier.wait()
            offset = index * requests_per_client * pairs_per_request
            for i in range(requests_per_client):
                chunk = _chunk(
                    pairs, offset + i * pairs_per_request, pairs_per_request
                )
                started = perf_counter()
                try:
                    answer = call(chunk)
                except Exception:
                    errors[index] += 1
                    continue
                hists[index].record(perf_counter() - started)
                if collected is not None:
                    collected.append((chunk, answer))
        answers[index] = collected

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = perf_counter()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - started
    completed = sum(hist.count for hist in hists)
    return LoadReport(
        mode="closed",
        op=op,
        connections=clients,
        requests=completed,
        pairs=completed * pairs_per_request,
        errors=sum(errors),
        elapsed_seconds=elapsed,
        hist=merge_all(hists),
        answers=[entry for collected in answers if collected for entry in collected],
    )


def run_open_loop(
    host: str,
    port: int,
    pairs: Sequence[Tuple[int, int]],
    *,
    rate: float,
    duration: float,
    connections: int = 4,
    op: str = "distance",
    pairs_per_request: int = 1,
    timeout: float = 60.0,
) -> LoadReport:
    """Open-loop run: fixed ``rate`` requests/s for ``duration`` seconds.

    Each connection owns every ``connections``-th slot of the global
    schedule; a request's latency is measured from its *scheduled* time,
    so server-side queueing shows up in the tail instead of vanishing
    into a delayed send (no coordinated omission).
    """
    if rate <= 0:
        raise ParameterError(f"rate must be > 0, got {rate}")
    if duration <= 0:
        raise ParameterError(f"duration must be > 0, got {duration}")
    if connections < 1:
        raise ParameterError(f"connections must be >= 1, got {connections}")
    if pairs_per_request < 1:
        raise ParameterError(
            f"pairs_per_request must be >= 1, got {pairs_per_request}"
        )
    interval = 1.0 / rate
    total_slots = max(1, int(rate * duration))
    hists = [LogHistogram() for _ in range(connections)]
    errors = [0] * connections
    barrier = threading.Barrier(connections + 1)
    epoch_holder = [0.0]

    def worker(index: int) -> None:
        with ServeClient(host, port, timeout=timeout) as client:
            call = client.distances if op == "distance" else client.routes
            barrier.wait()
            epoch = epoch_holder[0]
            for slot in range(index, total_slots, connections):
                scheduled = epoch + slot * interval
                delay = scheduled - perf_counter()
                if delay > 0:
                    sleep(delay)
                chunk = _chunk(pairs, slot * pairs_per_request, pairs_per_request)
                try:
                    call(chunk)
                except Exception:
                    errors[index] += 1
                    continue
                hists[index].record(perf_counter() - scheduled)

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(connections)
    ]
    for thread in threads:
        thread.start()
    # Fix the schedule epoch only once every connection is ready to send.
    epoch_holder[0] = perf_counter() + 0.05
    barrier.wait()
    started = perf_counter()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - started
    completed = sum(hist.count for hist in hists)
    return LoadReport(
        mode="open",
        op=op,
        connections=connections,
        requests=completed,
        pairs=completed * pairs_per_request,
        errors=sum(errors),
        elapsed_seconds=elapsed,
        offered_rate=rate * pairs_per_request,
        hist=merge_all(hists),
    )
