"""The batched query engine: approximate distances and routes.

The oracle's hot path is *query throughput*, not construction: a batch
of ``(s, t)`` pairs is answered in bulk over the flat columns of
:class:`~repro.oracle.tables.ScaleTables`.  Per pair:

1. ``s == t`` → 0 and adjacent pairs → 1, answered exactly (adjacency
   is one gather over the graph's CSR rows);
2. otherwise, every stored scale contributes the best shared-cluster
   estimate ``dist(c, s) + dist(c, t)`` over clusters ``c`` containing
   both endpoints, and the pair takes the minimum across scales (ties
   prefer the finer scale, then the smaller cluster id);
3. a pair sharing no cluster at any scale is in two different connected
   components (the terminal scale is the exact component cover) and
   reports :data:`~repro.oracle.tables.UNREACHABLE`.

Backend contract: the numpy path (ragged cross-join of the two
membership rows via the `gather_frontier_rows` repeat/arange idiom,
per-query ``minimum.reduceat``) and the pure-Python path (two-pointer
merge of the sorted membership rows) return **bit-identical** results —
both reduce the same integer key ``(dist_s + dist_t) · K + cluster``.
``REPRO_KERNEL=py`` forces the Python path, exactly as for the BFS
kernel and the engine primitives.

Routes are reconstructed from the stored BFS-parent columns by walking
``s → center → t`` inside the resolving cluster; the walk's hop count
always equals the returned estimate.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import TYPE_CHECKING, Sequence

from ..engine import _backend
from ..engine._backend import np
from ..errors import GraphError
from ..graphs._kernel import gather_frontier_rows
from ..telemetry import maybe_span, resolve
from .tables import DistanceOracle, TRIVIAL_SCALE, UNREACHABLE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry

__all__ = ["query_distances", "query_details", "query_routes"]

#: Key/estimate sentinel: strictly above any real key
#: ``(dist_s + dist_t) · K + cluster`` (≤ ``2n·K + K ≪ 2⁶²``).
_NO_ESTIMATE = 1 << 62

#: Batch size at which the vectorised path starts to win (the library's
#: measured python→numpy crossover, see ``repro.engine._backend``).
_MIN_NUMPY_BATCH = _backend.WIDE_THRESHOLD


def _split_pairs(
    oracle: DistanceOracle, pairs: Sequence[tuple[int, int]]
) -> tuple[list[int], list[int]]:
    graph = oracle.graph
    sources: list[int] = []
    targets: list[int] = []
    for s, t in pairs:
        graph._check_vertex(s)
        graph._check_vertex(t)
        sources.append(s)
        targets.append(t)
    return sources, targets


def query_distances(
    oracle: DistanceOracle,
    pairs: Sequence[tuple[int, int]],
    telemetry: "Telemetry | None" = None,
) -> list[int]:
    """Batched distance estimates; ``-1`` marks cross-component pairs."""
    estimates, _, _ = query_details(oracle, pairs, telemetry=telemetry)
    return estimates


def query_details(
    oracle: DistanceOracle,
    pairs: Sequence[tuple[int, int]],
    telemetry: "Telemetry | None" = None,
) -> tuple[list[int], list[int], list[int]]:
    """Batched ``(estimates, scales, clusters)`` columns.

    ``scales[q]`` is the index of the resolving scale,
    :data:`TRIVIAL_SCALE` for exact (self/adjacent) answers or
    :data:`UNREACHABLE` for cross-component pairs; ``clusters[q]`` is the
    resolving cluster id at that scale (``-1`` when not applicable).
    ``telemetry`` (or the ambient trace) records each batch as one
    ``oracle.query`` span with a ``pairs`` counter.
    """
    sources, targets = _split_pairs(oracle, pairs)
    if not sources:
        return [], [], []
    use_numpy = (
        _backend.enabled()
        and len(sources) >= _MIN_NUMPY_BATCH
        and oracle.graph._numpy_csr() is not None
    )
    tel = resolve(telemetry)
    with maybe_span(
        tel, "oracle.query", backend="numpy" if use_numpy else "python"
    ) as span:
        if span is not None:
            span.add("pairs", len(sources))
            started = perf_counter()
        if use_numpy:
            details = _details_numpy(oracle, sources, targets)
        else:
            details = _details_python(oracle, sources, targets)
        if span is not None:
            # Per-batch latency feeds the trace's mergeable histogram so
            # sharded campaigns can combine query-latency quantiles.
            elapsed = perf_counter() - started
            span.annotate(batch_seconds=round(elapsed, 9))
            tel.histogram("oracle.query.batch_seconds").record(elapsed)
        return details


# ----------------------------------------------------------------------
# Pure-Python path (the semantics of record)
# ----------------------------------------------------------------------
def _details_python(oracle, sources, targets):
    graph = oracle.graph
    count = len(sources)
    estimates = [_NO_ESTIMATE] * count
    scales = [UNREACHABLE] * count
    clusters = [-1] * count
    for index, scale in enumerate(oracle.scales):
        indptr = scale.indptr
        owner = scale.member_cluster
        dist = scale.member_dist
        num_clusters = scale.num_clusters
        for q in range(count):
            i, i_end = indptr[sources[q]], indptr[sources[q] + 1]
            j, j_end = indptr[targets[q]], indptr[targets[q] + 1]
            best = _NO_ESTIMATE
            while i < i_end and j < j_end:
                ci, cj = owner[i], owner[j]
                if ci == cj:
                    key = (dist[i] + dist[j]) * num_clusters + ci
                    if key < best:
                        best = key
                    i += 1
                    j += 1
                elif ci < cj:
                    i += 1
                else:
                    j += 1
            if best < _NO_ESTIMATE:
                estimate = best // num_clusters
                if estimate < estimates[q]:
                    estimates[q] = estimate
                    scales[q] = index
                    clusters[q] = best % num_clusters
    for q in range(count):
        if sources[q] == targets[q]:
            estimates[q], scales[q], clusters[q] = 0, TRIVIAL_SCALE, -1
        elif graph.has_edge(sources[q], targets[q]):
            estimates[q], scales[q], clusters[q] = 1, TRIVIAL_SCALE, -1
        elif estimates[q] == _NO_ESTIMATE:
            estimates[q] = -1
    return estimates, scales, clusters


# ----------------------------------------------------------------------
# Vectorised path (bit-identical by the integer-key contract)
# ----------------------------------------------------------------------
def _details_numpy(oracle, sources, targets):
    graph = oracle.graph
    np_indptr, _ = graph._numpy_csr()
    S = np.asarray(sources, dtype=np_indptr.dtype)
    T = np.asarray(targets, dtype=np_indptr.dtype)
    count = len(sources)
    estimates = np.full(count, _NO_ESTIMATE, dtype=np.int64)
    scales = np.full(count, UNREACHABLE, dtype=np.int64)
    clusters = np.full(count, -1, dtype=np.int64)
    for index, scale in enumerate(oracle.scales):
        views = scale.numpy_views()
        if views is None:  # pragma: no cover - numpy vanished mid-run
            return _details_python(oracle, sources, targets)
        indptr, owner, dist = views
        num_clusters = scale.num_clusters
        source_offsets = indptr[S]
        source_counts = indptr[S + 1] - source_offsets
        target_offsets = indptr[T]
        target_counts = indptr[T + 1] - target_offsets
        pair_counts = source_counts * target_counts
        total = int(pair_counts.sum())
        if total == 0:
            continue
        # Ragged cross-join of the two membership rows of every query:
        # each source slot is repeated once per target slot of the same
        # query; target slots are tiled via an offset-and-modulo pass.
        slot_ends = np.cumsum(source_counts)
        source_slots = np.repeat(
            source_offsets - (slot_ends - source_counts), source_counts
        ) + np.arange(int(slot_ends[-1]), dtype=np.int64)
        source_index = np.repeat(
            source_slots, np.repeat(target_counts, source_counts)
        )
        pair_ends = np.cumsum(pair_counts)
        pair_starts = pair_ends - pair_counts
        query_of = np.repeat(np.arange(count, dtype=np.int64), pair_counts)
        local = np.arange(total, dtype=np.int64) - pair_starts[query_of]
        target_index = target_offsets[query_of] + local % target_counts[query_of]
        same = owner[source_index] == owner[target_index]
        key = np.where(
            same,
            (dist[source_index] + dist[target_index]) * np.int64(num_clusters)
            + owner[source_index],
            np.int64(_NO_ESTIMATE),
        )
        # Per-query minimum: pad with the sentinel so empty-query segment
        # starts stay valid, then overwrite the empties (never clamp the
        # reduceat starts — that steals the previous segment's minimum).
        best = np.minimum.reduceat(np.append(key, np.int64(_NO_ESTIMATE)), pair_starts)
        best[pair_counts == 0] = _NO_ESTIMATE
        found = best < _NO_ESTIMATE
        estimate = np.where(found, best // num_clusters, _NO_ESTIMATE)
        better = estimate < estimates
        estimates[better] = estimate[better]
        scales[better] = index
        clusters[better] = (best % num_clusters)[better]
    self_mask = S == T
    adjacent = _batch_has_edge(graph, S, T) & ~self_mask
    estimates[adjacent] = 1
    scales[adjacent] = TRIVIAL_SCALE
    clusters[adjacent] = -1
    estimates[self_mask] = 0
    scales[self_mask] = TRIVIAL_SCALE
    clusters[self_mask] = -1
    estimates[estimates == _NO_ESTIMATE] = -1
    return estimates.tolist(), scales.tolist(), clusters.tolist()


def _batch_has_edge(graph, S, T):
    """Boolean adjacency of each ``(S[q], T[q])`` pair, one CSR gather."""
    np_indptr, np_indices = graph._numpy_csr()
    neighbors, counts = gather_frontier_rows(np_indptr, np_indices, S)
    if neighbors is None:
        return np.zeros(len(S), dtype=bool)
    hits = (neighbors == np.repeat(T, counts)).astype(np.int64)
    segment_starts = np.cumsum(counts) - counts
    matched = np.add.reduceat(np.append(hits, np.int64(0)), segment_starts)
    matched[counts == 0] = 0
    return matched > 0


# ----------------------------------------------------------------------
# Route reconstruction (python-side walks over the stored parent trees)
# ----------------------------------------------------------------------
def _slot_of(scale, vertex: int, cluster: int) -> int:
    lo, hi = scale.indptr[vertex], scale.indptr[vertex + 1]
    slot = bisect_left(scale.member_cluster, cluster, lo, hi)
    if slot == hi or scale.member_cluster[slot] != cluster:
        raise GraphError(
            f"vertex {vertex} is not a member of cluster {cluster}"
        )  # pragma: no cover - structural invariant
    return slot


def _walk_to_center(scale, vertex: int, cluster: int) -> list[int]:
    path = [vertex]
    current = vertex
    while True:
        parent = scale.member_parent[_slot_of(scale, current, cluster)]
        if parent < 0:
            return path
        path.append(parent)
        current = parent


def query_routes(
    oracle: DistanceOracle, pairs: Sequence[tuple[int, int]]
) -> list[list[int] | None]:
    """Batched explicit routes ``s → center → t`` (``None`` = unreachable).

    Each route is a walk in the graph whose hop count equals the
    distance estimate returned by :func:`query_distances` for the same
    pair; self pairs give ``[s]`` and adjacent pairs ``[s, t]``.
    """
    estimates, scales, clusters = query_details(oracle, pairs)
    routes: list[list[int] | None] = []
    for q, (s, t) in enumerate(pairs):
        if estimates[q] < 0:
            routes.append(None)
        elif scales[q] == TRIVIAL_SCALE:
            routes.append([s] if s == t else [s, t])
        else:
            scale = oracle.scales[scales[q]]
            to_center = _walk_to_center(scale, s, clusters[q])
            from_center = _walk_to_center(scale, t, clusters[q])
            routes.append(to_center + from_center[-2::-1])
    return routes
