"""Building the oracle: fringe growth, per-cluster BFS, table compaction.

For each :class:`~repro.oracle.hierarchy.CoreLevel` of the pyramid and
its cover radius ``W``, this module materialises the scale's cover and
compacts it into :class:`~repro.oracle.tables.ScaleTables`:

1. **fringe growth** — cover cluster ``j`` is ``N_W[core_j]``, grown
   with one multi-source :func:`~repro.graphs._kernel.bfs_levels` pass
   per core over a shared scratch mask (the
   :func:`~repro.core.carving.carve_block` allocation pattern: ``O(n)``
   once per scale, not per cluster).  Because cores partition ``V`` and
   ``v ∈ core(v)``, the ``W``-ball of every vertex is contained in its
   own core's cover cluster — the covering property is structural;
2. **center BFS** — a deterministic pure-Python BFS from the cluster
   center, restricted to the cluster's induced subgraph, records every
   member's hop distance and BFS parent (the routing tree).  Restricting
   to the cluster keeps distances conservative (never below the true
   ``G``-distance), which is exactly what the stretch proof needs;
3. **compaction** — per-vertex membership slots are flattened into the
   vertex-major CSR columns the batched query engine reads.

Scales whose cover would exceed the membership budget
(``overlap_budget × n`` slots) are *skipped*: on low-diameter graphs the
``W``-fringe volume explodes exponentially while core counts shrink only
geometrically, so the builder jumps straight to the terminal component
cover instead of storing a table that would dwarf the graph itself.
The stretch bound accounts for skipped scales automatically (the
resolution floor of a stored scale references the previous *stored*
scale).  High-diameter graphs (tori, grids, paths) never trigger the
budget and get the full geometric ladder ``W = 1, 2, 4, …``.
"""

from __future__ import annotations

import math
from array import array
from typing import TYPE_CHECKING

from ..errors import ParameterError, SimulationError
from ..graphs._kernel import bfs_levels as _kernel_bfs_levels
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED
from ..telemetry import maybe_span, measure_span, resolve
from .hierarchy import (
    CoreLevel,
    _default_k,
    base_level,
    coarsen_level,
    component_level,
)
from .tables import DistanceOracle, ScaleTables

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import Telemetry

__all__ = ["build_oracle", "compact_scale"]


def _cluster_bfs(graph, center, outside, dist, parent) -> int:
    """BFS from ``center`` over vertices with ``outside[v] == 0``.

    Fills ``dist``/``parent`` for every reached vertex, marks reached
    vertices in ``outside`` and returns the eccentricity.  Level-sorted
    like the traversal kernel, parents chosen by first (lowest-id)
    discoverer, so the routing tree is deterministic on every backend.
    """
    indptr, indices = graph.csr()
    outside[center] = 1
    dist[center] = 0
    parent[center] = -1
    level = [center]
    depth = 0
    while level:
        depth += 1
        frontier: list[int] = []
        append = frontier.append
        for u in level:
            for position in range(indptr[u], indptr[u + 1]):
                w = indices[position]
                if not outside[w]:
                    outside[w] = 1
                    dist[w] = depth
                    parent[w] = u
                    append(w)
        frontier.sort()
        level = frontier
    return depth - 1


def compact_scale(
    graph: Graph,
    level: CoreLevel,
    radius: int,
    min_distance: int,
    budget_entries: int | None,
) -> ScaleTables | None:
    """Materialise one scale's cover as columnar tables.

    Returns ``None`` when the cover's total membership would exceed
    ``budget_entries`` (never for a component level, whose cover is the
    partition itself and costs exactly ``n`` slots).
    """
    n = graph.num_vertices
    num_cores = level.num_cores
    core_of = level.core_of
    # Counting-sort vertices into per-core member lists (ascending).
    core_start = [0] * (num_cores + 1)
    for v in range(n):
        core_start[core_of[v] + 1] += 1
    for j in range(num_cores):
        core_start[j + 1] += core_start[j]
    core_members = [0] * n
    cursor = list(core_start[:num_cores])
    for v in range(n):
        j = core_of[v]
        core_members[cursor[j]] = v
        cursor[j] += 1
    # Canonical cluster ids: rank cores by their smallest member, so the
    # stored tables are independent of the carving's phase order (and
    # column-identical stalled scales deduplicate in the build loop).
    order = sorted(range(num_cores), key=lambda j: core_members[core_start[j]])

    fringe_scratch = bytearray(n)
    inside_scratch = bytearray(b"\x01") * n
    dist_scratch = [0] * n
    parent_scratch = [0] * n
    slots_of: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
    ecc = array("l", bytes(array("l").itemsize * num_cores))
    centers = array("l", bytes(array("l").itemsize * num_cores))
    entries = 0
    fringe_radius = None if level.is_components else radius

    for rank, j in enumerate(order):
        core = core_members[core_start[j] : core_start[j + 1]]
        levels = _kernel_bfs_levels(graph, core, fringe_scratch, radius=fringe_radius)
        members: list[int] = []
        for lev in levels:
            members.extend(lev)
        for v in members:
            fringe_scratch[v] = 0
        entries += len(members)
        if budget_entries is not None and not level.is_components:
            if entries > budget_entries:
                return None
        for v in members:
            inside_scratch[v] = 0
        centers[rank] = level.centers[j]
        ecc[rank] = _cluster_bfs(
            graph, level.centers[j], inside_scratch, dist_scratch, parent_scratch
        )
        for v in members:
            if not inside_scratch[v]:  # pragma: no cover - structural invariant
                raise SimulationError(
                    f"cover cluster {rank} member {v} unreachable from its center"
                )
            slots_of[v].append((rank, dist_scratch[v], parent_scratch[v]))

    word = array("l").itemsize
    indptr = array("l", bytes(word * (n + 1)))
    member_cluster = array("l", bytes(word * entries))
    member_dist = array("l", bytes(word * entries))
    member_parent = array("l", bytes(word * entries))
    position = 0
    for v in range(n):
        for cluster, dist, parent in slots_of[v]:
            member_cluster[position] = cluster
            member_dist[position] = dist
            member_parent[position] = parent
            position += 1
        indptr[v + 1] = position
    return ScaleTables(
        radius=radius,
        min_distance=min_distance,
        is_components=level.is_components,
        centers=centers,
        ecc=ecc,
        indptr=indptr,
        member_cluster=member_cluster,
        member_dist=member_dist,
        member_parent=member_parent,
    )


def build_oracle(
    graph: Graph,
    k: float | None = None,
    c: float = 4.0,
    seed: int = DEFAULT_SEED,
    overlap_budget: float = 8.0,
    max_depth: int | None = None,
    telemetry: "Telemetry | None" = None,
) -> DistanceOracle:
    """Build the multi-scale distance/routing oracle of ``graph``.

    Parameters
    ----------
    graph:
        Host graph (need not be connected).
    k, c:
        Elkin–Neiman parameters for the level-0 decomposition
        (``k`` defaults to ``⌈ln n⌉``; quotient levels re-derive ``k``
        from their own size).
    seed:
        Root seed; every level draws from a derived stream, so builds
        are bit-reproducible.
    overlap_budget:
        Maximum mean overlap: a scale may store at most
        ``overlap_budget × n`` membership slots, else it is skipped
        (``≥ 1``; the component scale always fits).
    max_depth:
        Cap on coarsening rounds (default ``⌈log₂ n⌉ + 2``); reaching it
        forces the terminal component scale.
    telemetry:
        Explicit :class:`~repro.telemetry.Telemetry` collector, or
        ``None`` for the ambient one.  When enabled the build emits an
        ``oracle.build`` span with nested per-scale ``scale`` and
        carving ``carve`` spans.

    Returns
    -------
    DistanceOracle
        Fine-to-coarse scales, terminated by the component cover.
    """
    n = graph.num_vertices
    if overlap_budget < 1:
        raise ParameterError(
            f"overlap_budget must be >= 1, got {overlap_budget}"
        )
    if k is None:
        k = _default_k(n)
    if max_depth is None:
        max_depth = max(2, math.ceil(math.log2(max(n, 2))) + 2)
    oracle = DistanceOracle(
        graph=graph,
        scales=[],
        k=k,
        c=c,
        seed=seed,
        overlap_budget=overlap_budget,
    )
    if n == 0:
        return oracle
    tel = resolve(telemetry)
    budget_entries = int(overlap_budget * n)
    with maybe_span(tel, "oracle.build", n=n, k=k, c=c, seed=seed) as build_span, \
            measure_span(build_span):
        with maybe_span(tel, "carve", depth=0):
            level = base_level(graph, k, c, seed)
        radius = 1
        depth = 0
        previous_stored = 0
        while True:
            if not level.is_components and depth >= max_depth:
                level = component_level(graph)
            min_distance = 2 if not oracle.scales else previous_stored + 1
            with maybe_span(tel, "scale", radius=radius) as scale_span:
                tables = compact_scale(
                    graph, level, radius, min_distance, budget_entries
                )
                if scale_span is not None:
                    if tables is None:
                        scale_span.annotate(skipped=True)
                    else:
                        scale_span.add("clusters", tables.num_clusters)
                        scale_span.add("entries", tables.entries)
            if tables is None:
                # Fringe volume outran the budget: skip every remaining
                # intermediate scale and finish with the exact component cover.
                oracle.skipped_radii.append(radius)
                level = component_level(graph)
                continue
            if oracle.scales and _same_cover(oracle.scales[-1], tables):
                # The fringe saturated: N_{2W}[core] == N_W[core] means every
                # cover cluster already fills its whole connected component,
                # so this cover resolves every same-component pair and any
                # coarser scale could never resolve anything new.  Relabel
                # the stored twin with the larger covering radius and stop.
                oracle.scales[-1].radius = radius
                oracle.scales[-1].is_components = True
                break
            oracle.scales.append(tables)
            previous_stored = radius
            if level.is_components:
                break
            depth += 1
            with maybe_span(tel, "carve", depth=depth):
                level = coarsen_level(graph, level, c, seed, depth)
            radius *= 2
        if build_span is not None:
            build_span.add("scales", len(oracle.scales))
            build_span.add(
                "entries", sum(s.entries for s in oracle.scales)
            )
    return oracle


def _same_cover(previous: ScaleTables, current: ScaleTables) -> bool:
    """Whether two scales store the exact same clusters and distances."""
    return (
        previous.centers == current.centers
        and previous.indptr == current.indptr
        and previous.member_cluster == current.member_cluster
        and previous.member_dist == current.member_dist
    )
