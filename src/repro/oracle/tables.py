"""Columnar tables of the hierarchical distance/routing oracle.

Paper context: §1.1 — network decompositions are *"closely related to
neighborhood covers, which are used extensively for routing and
synchronization"*.  This module is the storage half of that application:
the multi-scale cover hierarchy built by :mod:`repro.oracle.build` is
compacted into flat ``array('l')`` buffers, mirroring the CSR layout of
:class:`~repro.graphs.graph.Graph`, so that the batched query engine in
:mod:`repro.oracle.query` can serve them either with plain-Python loops
or with zero-copy numpy gathers — bit-identically (the library-wide
backend contract, see :mod:`repro.graphs._kernel`).

Per scale ``i`` (cover radius ``W_i``):

* ``centers[j]`` / ``ecc[j]`` — the center vertex of cover cluster ``j``
  and its measured eccentricity *inside* the cluster's induced subgraph;
* ``indptr`` / ``member_cluster`` / ``member_dist`` / ``member_parent``
  — a vertex-major CSR: slot range ``indptr[v]:indptr[v+1]`` lists the
  clusters containing ``v`` (ascending), ``v``'s hop distance to each
  cluster's center (measured inside the cluster) and ``v``'s BFS parent
  toward that center (``-1`` at the center itself).

The advertised stretch bound is instance-measured and provable from the
tables alone: a pair resolved at scale ``i`` has true distance at least
``min_distance_i`` (the covering property of every finer stored scale),
and its estimate ``d(c, s) + d(c, t)`` is at most ``2 · max(ecc_i)``.
"""

from __future__ import annotations

from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from ..graphs.graph import Graph

__all__ = [
    "ScaleTables",
    "DistanceOracle",
    "UNREACHABLE",
    "TRIVIAL_SCALE",
    "load",
]

#: ``scale`` marker returned by the query engine for unreachable pairs.
UNREACHABLE = -1

#: ``scale`` marker for pairs answered exactly before the scale sweep
#: (identical endpoints and adjacent endpoints).
TRIVIAL_SCALE = -2


@dataclass
class ScaleTables:
    """One scale of the oracle: a cover compacted into flat columns.

    ``radius`` is the cover radius ``W`` (every ``W``-ball of the graph
    is contained in at least one cluster of this scale).
    ``min_distance`` is the resolution floor: any query pair *first*
    resolved at this scale is guaranteed to be at true distance at least
    ``min_distance`` (see :attr:`DistanceOracle.stretch_bound`).
    """

    radius: int
    min_distance: int
    is_components: bool
    centers: array
    ecc: array
    indptr: array
    member_cluster: array
    member_dist: array
    member_parent: array
    _np: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def num_clusters(self) -> int:
        """Number of cover clusters at this scale."""
        return len(self.centers)

    @property
    def entries(self) -> int:
        """Total membership slots (``n × mean overlap``)."""
        return len(self.member_cluster)

    @property
    def rmax(self) -> int:
        """Largest in-cluster center eccentricity at this scale."""
        return max(self.ecc, default=0)

    @property
    def max_overlap(self) -> int:
        """Largest number of clusters any one vertex belongs to."""
        indptr = self.indptr
        return max(
            (indptr[v + 1] - indptr[v] for v in range(len(indptr) - 1)),
            default=0,
        )

    def numpy_views(self):
        """Zero-copy numpy views of every column (``None`` without numpy).

        Lazily built on first use, exactly like
        :meth:`repro.graphs.graph.Graph._numpy_csr`.
        """
        if self._np is None:
            try:
                import numpy as np
            except ImportError:  # pragma: no cover - stdlib-only installs
                return None
            dtype = np.dtype("l")
            self._np = (
                np.frombuffer(self.indptr, dtype=dtype),
                np.frombuffer(self.member_cluster, dtype=dtype),
                np.frombuffer(self.member_dist, dtype=dtype),
            )
        return self._np

    def clusters_of(self, v: int) -> list[tuple[int, int]]:
        """``(cluster, distance-to-center)`` pairs for vertex ``v``, ascending."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return [
            (self.member_cluster[s], self.member_dist[s]) for s in range(lo, hi)
        ]

    def members_of(self, cluster: int) -> list[int]:
        """Sorted member vertices of ``cluster`` (linear scan; tests/stats only)."""
        members = []
        indptr, owner = self.indptr, self.member_cluster
        for v in range(len(indptr) - 1):
            for s in range(indptr[v], indptr[v + 1]):
                if owner[s] == cluster:
                    members.append(v)
                    break
        return members


@dataclass
class DistanceOracle:
    """A built multi-scale distance/routing oracle over one graph.

    Scales are ordered fine-to-coarse; the last scale is always the
    exact component cover (one cluster per connected component), so any
    same-component pair resolves and cross-component pairs return
    :data:`UNREACHABLE`.  Queries are answered batched — see
    :mod:`repro.oracle.query` for the engine and the backend contract.
    """

    graph: Graph
    scales: list[ScaleTables]
    k: float
    c: float
    seed: int
    overlap_budget: float
    skipped_radii: list[int] = field(default_factory=list)

    @property
    def num_scales(self) -> int:
        """Number of stored scales."""
        return len(self.scales)

    @property
    def stretch_bound(self) -> float:
        """The advertised multiplicative stretch of every answer.

        For a pair at true distance ``d ≥ 1`` the returned estimate
        ``est`` satisfies ``d ≤ est ≤ stretch_bound · d``:

        * ``est ≥ d`` because every estimate is the length of a real
          walk ``s → center → t``;
        * a pair first sharing a cluster at scale ``i`` has
          ``d ≥ min_distance_i`` (its ``W``-ball at every finer stored
          scale was inside a stored cluster) and
          ``est ≤ 2 · max(ecc_i)``, so
          ``est / d ≤ 2 · max(ecc_i) / min_distance_i``; identical and
          adjacent pairs are answered exactly.
        """
        bound = 1.0
        for scale in self.scales:
            if scale.num_clusters:
                bound = max(bound, 2.0 * scale.rmax / scale.min_distance)
        return bound

    def distances(self, pairs: Sequence[tuple[int, int]], telemetry=None) -> list[int]:
        """Batched distance estimates (``-1`` for cross-component pairs)."""
        from .query import query_distances

        return query_distances(self, pairs, telemetry=telemetry)

    def distance_details(self, pairs: Sequence[tuple[int, int]], telemetry=None):
        """Batched ``(estimate, scale, cluster)`` triples (see query module)."""
        from .query import query_details

        return query_details(self, pairs, telemetry=telemetry)

    def routes(self, pairs: Sequence[tuple[int, int]]) -> list[list[int] | None]:
        """Batched explicit routes; ``None`` for cross-component pairs."""
        from .query import query_routes

        return query_routes(self, pairs)

    def scale_rows(self) -> list[dict]:
        """Per-scale summary rows (the CLI/bench table)."""
        rows = []
        for i, scale in enumerate(self.scales):
            rows.append(
                {
                    "scale": i,
                    "W": scale.radius,
                    "clusters": scale.num_clusters,
                    "entries": scale.entries,
                    "max_overlap": scale.max_overlap,
                    "rmax": scale.rmax,
                    "min_d": scale.min_distance,
                    "components": scale.is_components,
                }
            )
        return rows


# ----------------------------------------------------------------------
# Shared table loading (CLI + serving daemon)
# ----------------------------------------------------------------------

#: Most-recently-loaded oracles kept alive, keyed by full build recipe.
_LOAD_CACHE: "OrderedDict[tuple, DistanceOracle]" = OrderedDict()
_LOAD_CACHE_CAPACITY = 4


def load(
    graph_spec: str,
    *,
    seed: int,
    k: float | None = None,
    c: float = 4.0,
    overlap_budget: float = 8.0,
    telemetry=None,
    use_cache: bool = True,
) -> DistanceOracle:
    """Build (or reuse) the oracle tables for a ``family:arg:arg`` spec.

    This is the one table-loading path shared by ``repro oracle``, the
    ``repro serve`` daemon and the loadgen validator: the full build
    recipe ``(graph_spec, seed, k, c, overlap_budget)`` keys a small LRU
    memo, so invoking a query after a build — or starting a daemon after
    a dry-run build — reuses the tables instead of re-deriving them.
    Builds are deterministic in the recipe, so a memo hit is
    indistinguishable from a rebuild (modulo time).  ``use_cache=False``
    bypasses the memo both ways (no lookup, no store) for callers that
    need an isolated instance.
    """
    from ..graphs.builders import parse_graph_spec
    from .build import build_oracle

    key = (graph_spec, seed, k, c, overlap_budget)
    if use_cache and key in _LOAD_CACHE:
        _LOAD_CACHE.move_to_end(key)
        return _LOAD_CACHE[key]
    graph = parse_graph_spec(graph_spec, seed=seed)
    oracle = build_oracle(
        graph,
        k=k,
        c=c,
        seed=seed,
        overlap_budget=overlap_budget,
        telemetry=telemetry,
    )
    if use_cache:
        _LOAD_CACHE[key] = oracle
        while len(_LOAD_CACHE) > _LOAD_CACHE_CAPACITY:
            _LOAD_CACHE.popitem(last=False)
    return oracle
