"""Shared answer-validation and checksum helpers.

The `oracle` experiment adapter, the ``repro oracle query`` CLI and the
E18 benchmark all validate a sample of answers against exact BFS and pin
full batches with the same checksum.  One implementation keeps their
artifacts comparable: if the checksum formula or the
unreachable/self-pair conventions ever change, they change everywhere at
once.
"""

from __future__ import annotations

from typing import Sequence

from ..graphs.traversal import bfs_distances
from .tables import DistanceOracle

__all__ = ["estimates_checksum", "validate_sample"]


def estimates_checksum(estimates: Sequence[int]) -> int:
    """Order-sensitive checksum pinning a whole batch of estimates."""
    return sum((i + 1) * (e + 2) for i, e in enumerate(estimates)) % 1_000_003


def validate_sample(
    oracle: DistanceOracle,
    pairs: Sequence[tuple[int, int]],
    estimates: Sequence[int],
    check: int,
) -> dict:
    """Check the first ``check`` answers against exact BFS.

    Verifies the two-sided guarantee ``d ≤ est ≤ stretch_bound · d`` for
    reachable pairs (estimate 0 for self pairs, −1 for cross-component
    pairs) and returns ``{"checked", "violations", "worst_stretch"}``.
    """
    bound = oracle.stretch_bound
    graph = oracle.graph
    checked = 0
    violations = 0
    worst = 0.0
    for (s, t), estimate in zip(pairs[:check], estimates[:check]):
        exact = bfs_distances(graph, s).get(t)
        checked += 1
        if exact is None:
            violations += estimate != -1
        elif exact == 0:
            violations += estimate != 0
        else:
            if not exact <= estimate <= bound * exact:
                violations += 1
            worst = max(worst, estimate / exact)
    return {
        "checked": checked,
        "violations": violations,
        "worst_stretch": round(worst, 4),
    }
