"""The core pyramid: geometrically coarser partitions via the paper's carving.

Each oracle scale needs a partition of ``V`` into connected *cores*
whose granularity matches the scale's cover radius ``W``.  The pyramid
is built entirely out of the paper's own machinery:

* **level 0** is a Theorem 1 decomposition of ``G`` itself
  (:func:`repro.core.elkin_neiman.decompose`) — connected clusters,
  strong diameter ``≤ 2k−2``, one center per cluster (Lemma 4);
* **level i+1** contracts the level-``i`` cores into supernodes (the
  paper's supergraph ``G(P)``, :func:`repro.graphs.subgraph.quotient_graph`)
  and decomposes *that* graph with the same algorithm; each quotient
  cluster merges its member cores into one coarser core.  Quotient
  clusters are connected and every quotient edge is witnessed by a
  ``G``-edge, so coarser cores stay connected in ``G``;
* the **component level** (cores = connected components) terminates the
  pyramid: once the quotient has no edges the cores cannot coarsen
  further, and at that point they *are* the components.

Why not decompose the power graph ``G^{2W+1}`` at every scale, as
:func:`repro.applications.covers.build_cover` does?  Materialising
``G^{2W+1}`` costs ``Θ(n · |B(v, 2W+1)|)`` edges — already ``≳ 10⁷`` at
``n = 10⁵`` for ``W = 1`` and essentially ``n²`` for larger ``W``.  The
quotient pyramid keeps every level ``O(n + m)`` while still using the
paper's decomposition as the only clustering primitive; the covering
property the oracle needs (every ``W``-ball inside some cover cluster)
holds for *any* partition once the ``W``-fringe is grown (see
:mod:`repro.oracle.build`), and the overlap is measured and budgeted
rather than bounded by χ.  ``docs/oracle.md`` discusses the trade-off.
"""

from __future__ import annotations

import math
from array import array
from dataclasses import dataclass

from ..core import elkin_neiman
from ..graphs.graph import Graph
from ..graphs.subgraph import quotient_graph
from ..graphs.traversal import connected_components
from ..rng import derive_seed

__all__ = ["CoreLevel", "base_level", "coarsen_level", "component_level"]


@dataclass
class CoreLevel:
    """A partition of ``V`` into connected cores, with one center each.

    ``core_of[v]`` is the core index of vertex ``v``; ``centers[j]`` is a
    member vertex of core ``j`` acting as its BFS root downstream.
    ``is_components`` marks the terminal level (cores = connected
    components of ``G``).
    """

    core_of: array
    centers: list[int]
    is_components: bool

    @property
    def num_cores(self) -> int:
        """Number of cores in the partition."""
        return len(self.centers)


def _level_from_decomposition(graph: Graph, decomposition) -> CoreLevel:
    """Flatten a :class:`NetworkDecomposition` into a :class:`CoreLevel`."""
    core_of = array("l", bytes(array("l").itemsize * graph.num_vertices))
    centers: list[int] = []
    for cluster in decomposition.clusters:
        for v in cluster.vertices:
            core_of[v] = cluster.index
        center = cluster.center
        if center is None or center not in cluster.vertices:
            center = min(cluster.vertices)
        centers.append(center)
    return CoreLevel(core_of=core_of, centers=centers, is_components=False)


def _default_k(n: int) -> float:
    return max(2, math.ceil(math.log(max(n, 2))))


def base_level(graph: Graph, k: float, c: float, seed: int) -> CoreLevel:
    """Level 0: the paper's Theorem 1 decomposition of ``G`` itself."""
    if graph.num_vertices == 0:
        return CoreLevel(core_of=array("l"), centers=[], is_components=True)
    decomposition, _ = elkin_neiman.decompose(
        graph, k=k, c=c, seed=derive_seed(seed, "oracle", "level", 0)
    )
    level = _level_from_decomposition(graph, decomposition)
    return _mark_if_components(graph, level)


def coarsen_level(
    graph: Graph, level: CoreLevel, c: float, seed: int, depth: int
) -> CoreLevel:
    """Level ``depth``: decompose the supergraph of ``level`` and merge cores."""
    quotient = quotient_graph(
        graph,
        {v: level.core_of[v] for v in graph.vertices()},
        level.num_cores,
    )
    k_q = _default_k(quotient.num_vertices)
    decomposition, _ = elkin_neiman.decompose(
        quotient, k=k_q, c=c, seed=derive_seed(seed, "oracle", "level", depth)
    )
    merged_of = decomposition.cluster_index_map()
    core_of = array("l", bytes(array("l").itemsize * graph.num_vertices))
    for v in graph.vertices():
        core_of[v] = merged_of[level.core_of[v]]
    centers: list[int] = []
    for cluster in decomposition.clusters:
        root = cluster.center
        if root is None or root not in cluster.vertices:
            root = min(cluster.vertices)
        # The quotient cluster's center is a supernode; its G-center is
        # that supernode's own center vertex from the finer level.
        centers.append(level.centers[root])
    coarse = CoreLevel(core_of=core_of, centers=centers, is_components=False)
    return _mark_if_components(graph, coarse)


def component_level(graph: Graph) -> CoreLevel:
    """The terminal level: one core per connected component."""
    core_of = array("l", bytes(array("l").itemsize * graph.num_vertices))
    centers: list[int] = []
    for index, component in enumerate(connected_components(graph)):
        for v in component:
            core_of[v] = index
        centers.append(component[0])
    return CoreLevel(core_of=core_of, centers=centers, is_components=True)


def _mark_if_components(graph: Graph, level: CoreLevel) -> CoreLevel:
    """Set ``is_components`` when no edge crosses two cores."""
    indptr, indices = graph.csr()
    core_of = level.core_of
    for u in range(graph.num_vertices):
        label = core_of[u]
        for position in range(indptr[u], indptr[u + 1]):
            if core_of[indices[position]] != label:
                return level
    level.is_components = True
    return level
