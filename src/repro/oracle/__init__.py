"""Hierarchical cover-based distance/routing oracle (paper §1.1).

The paper motivates strong-diameter decompositions through their role in
*"routing and synchronization"* via neighborhood covers.  This package
turns that motivation into a served workload: a hierarchy of covers at
geometric radii ``W = 1, 2, 4, …`` is precomputed with the paper's
decomposition as the only clustering primitive
(:mod:`~repro.oracle.hierarchy`), compacted into flat columnar tables
(:mod:`~repro.oracle.tables` / :mod:`~repro.oracle.build`), and served
by a batched, dual-backend query engine (:mod:`~repro.oracle.query`)
with an instance-measured, provable stretch bound.

>>> from repro.graphs import grid_graph
>>> from repro.oracle import build_oracle
>>> oracle = build_oracle(grid_graph(8, 8), seed=1)
>>> oracle.distances([(0, 63)])[0] >= 14  # true distance, never below
True
"""

from .build import build_oracle, compact_scale
from .query import query_details, query_distances, query_routes
from .tables import DistanceOracle, ScaleTables, TRIVIAL_SCALE, UNREACHABLE, load
from .validate import estimates_checksum, validate_sample

__all__ = [
    "DistanceOracle",
    "ScaleTables",
    "TRIVIAL_SCALE",
    "UNREACHABLE",
    "build_oracle",
    "compact_scale",
    "estimates_checksum",
    "load",
    "query_details",
    "query_distances",
    "query_routes",
    "validate_sample",
]
