"""Analysis utilities: quality reports, lemma estimators, theory tables.

* :mod:`~repro.analysis.quality` — exact measurements of a decomposition;
* :mod:`~repro.analysis.order_statistics` — Lemma 5 bound + Monte Carlo;
* :mod:`~repro.analysis.survival` — Claim 6/8 envelopes and empirics;
* :mod:`~repro.analysis.theory` — §1.2 closed-form comparison rows;
* :mod:`~repro.analysis.tables` — plain-text table rendering.
"""

from .gaps import GapStatistics, gap_profile, phase_gap_statistics
from .order_statistics import (
    GapEstimate,
    estimate_within_one_probability,
    join_probability_lower_bound,
    lemma5_bound,
)
from .quality import QualityReport, report
from .sweeps import Sweep, aggregate, run_sweep
from .survival import (
    SurvivalSummary,
    aggregate_survival,
    claim6_envelope,
    claim8_envelope,
    mean_ragged_curves,
    survival_curve,
)
from .tables import format_records, format_table, format_value
from .theory import (
    TheoryRow,
    aglp_row,
    comparison_rows,
    elkin_neiman_row,
    ls_row,
    ps_row,
)

__all__ = [
    "GapEstimate",
    "GapStatistics",
    "QualityReport",
    "SurvivalSummary",
    "Sweep",
    "TheoryRow",
    "aggregate",
    "aggregate_survival",
    "gap_profile",
    "phase_gap_statistics",
    "run_sweep",
    "aglp_row",
    "claim6_envelope",
    "claim8_envelope",
    "comparison_rows",
    "elkin_neiman_row",
    "estimate_within_one_probability",
    "format_records",
    "format_table",
    "format_value",
    "join_probability_lower_bound",
    "lemma5_bound",
    "ls_row",
    "mean_ragged_curves",
    "ps_row",
    "report",
    "survival_curve",
]
