"""Claim 6 / Corollary 7 / Claim 8: survival-probability empirics.

Claim 6: ``Pr[y ∈ G_{t+1}] ≤ (1 − (cn)^{-1/k})^t`` — every vertex joins a
block with probability at least ``(cn)^{-1/k}`` per phase regardless of
history.  Corollary 7: after ``λ = (cn)^{1/k}·ln(cn)`` phases the graph is
empty with probability ``≥ 1 − 1/c``.  Claim 8 (Theorem 2's staged
variant): survival into stage ``i`` has probability ``≤ e^{-2i}``.

This module turns traces of carving runs into empirical survival curves
and provides the theoretical envelopes to compare against (experiment E6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.driver import DecompositionTrace
from ..errors import ParameterError

__all__ = [
    "claim6_envelope",
    "claim8_envelope",
    "mean_ragged_curves",
    "survival_curve",
    "aggregate_survival",
    "SurvivalSummary",
]


def mean_ragged_curves(curves: Sequence[Sequence[float]]) -> list[float]:
    """Pointwise mean of ragged curves, zero-padded to the longest.

    The Claim 6 aggregation convention: a run that finished early
    contributes zero survivors afterwards.  Shared by
    :func:`aggregate_survival` (trace-based) and the experiment
    runtime's record-based reduction, so the convention has one owner.
    """
    if not curves:
        return []
    longest = max(len(curve) for curve in curves)
    return [
        sum(curve[t] if t < len(curve) else 0.0 for curve in curves) / len(curves)
        for t in range(longest)
    ]


def claim6_envelope(n: int, k: float, c: float, phases: int) -> list[float]:
    """Theoretical survival envelope ``(1 − (cn)^{-1/k})^t`` for ``t = 1..phases``."""
    if n < 1 or k < 1 or c <= 0 or phases < 0:
        raise ParameterError("need n >= 1, k >= 1, c > 0, phases >= 0")
    rate = 1.0 - (c * n) ** (-1.0 / k)
    return [rate**t for t in range(1, phases + 1)]


def claim8_envelope(stages: int) -> list[float]:
    """Theorem 2's per-stage survival envelope ``e^{-2i}`` for ``i = 0..stages``."""
    if stages < 0:
        raise ParameterError(f"stages must be >= 0, got {stages}")
    return [math.exp(-2.0 * i) for i in range(stages + 1)]


def survival_curve(trace: DecompositionTrace, n: int) -> list[float]:
    """Fraction of vertices still alive after each phase of one run."""
    if n < 1:
        return []
    return [survivors / n for survivors in trace.survivors]


@dataclass(frozen=True)
class SurvivalSummary:
    """Aggregated survival statistics over several runs.

    ``mean_curve[t]`` is the mean fraction of vertices alive after phase
    ``t + 1`` across runs (missing phases count as 0 — the graph was
    already empty).  ``max_phases_observed`` is the longest run;
    ``exhausted_within_nominal_fraction`` is the empirical Corollary 7
    success rate.
    """

    mean_curve: list[float]
    max_phases_observed: int
    exhausted_within_nominal_fraction: float
    runs: int


def aggregate_survival(
    traces: Sequence[DecompositionTrace], n: int
) -> SurvivalSummary:
    """Aggregate survival curves of several runs on ``n``-vertex graphs."""
    if not traces:
        raise ParameterError("need at least one trace")
    longest = max(trace.total_phases for trace in traces)
    mean = mean_ragged_curves([survival_curve(trace, n) for trace in traces])
    mean += [0.0] * (longest - len(mean))
    within = sum(1 for trace in traces if trace.exhausted_within_nominal)
    return SurvivalSummary(
        mean_curve=mean,
        max_phases_observed=longest,
        exhausted_within_nominal_fraction=within / len(traces),
        runs=len(traces),
    )
