"""Closed-form bounds of prior work — the §1.2 comparison table.

The paper positions its result against three lines of work:

====================  ======================  ==========================  =====================
algorithm             diameter                colours                     rounds
====================  ======================  ==========================  =====================
AGLP89 (det.)         2^O(√(log n log log n)) 2^O(√(log n log log n))     2^O(√(log n log log n))
PS92 (det.)           2^O(√log n)             2^O(√log n)                 2^O(√log n)
LS93 (rand., WEAK)    O(log n)                O(log n)                    O(log² n)
This paper (STRONG)   O(log n)                O(log n)                    O(log² n)
====================  ======================  ==========================  =====================

The deterministic bounds are asymptotic families; we evaluate them with
unit constants in the exponent — they are orders of magnitude above the
polylogarithmic algorithms for every practical ``n``, which is the
qualitative shape experiment E4 reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError

__all__ = [
    "TheoryRow",
    "aglp_row",
    "ps_row",
    "ls_row",
    "elkin_neiman_row",
    "comparison_rows",
]


@dataclass(frozen=True)
class TheoryRow:
    """One row of the §1.2 comparison: nominal bounds with unit constants."""

    algorithm: str
    diameter_kind: str  # "strong" or "weak"
    diameter: float
    colors: float
    rounds: float
    deterministic: bool


def _check_n(n: int) -> None:
    if n < 2:
        raise ParameterError(f"n must be >= 2, got {n}")


def aglp_row(n: int) -> TheoryRow:
    """Awerbuch–Goldberg–Luby–Plotkin 1989: all three ``2^O(√(log n log log n))``."""
    _check_n(n)
    log_n = math.log2(n)
    value = 2.0 ** math.sqrt(log_n * max(math.log2(max(log_n, 2.0)), 1.0))
    return TheoryRow(
        algorithm="AGLP89",
        diameter_kind="strong",
        diameter=value,
        colors=value,
        rounds=value,
        deterministic=True,
    )


def ps_row(n: int) -> TheoryRow:
    """Panconesi–Srinivasan 1992: all three ``2^O(√log n)``."""
    _check_n(n)
    value = 2.0 ** math.sqrt(math.log2(n))
    return TheoryRow(
        algorithm="PS92",
        diameter_kind="strong",
        diameter=value,
        colors=value,
        rounds=value,
        deterministic=True,
    )


def ls_row(n: int, k: int | None = None) -> TheoryRow:
    """Linial–Saks 1993: weak ``(O(log n), O(log n))`` in ``O(log² n)``.

    With explicit ``k``: weak ``(2k−2, O(n^{1/k}·log n))`` in expected
    ``O(k·n^{1/k}·log n)`` rounds.
    """
    _check_n(n)
    if k is None:
        k = max(1, round(math.log(n)))
    colors = n ** (1.0 / k) * math.log(n)
    return TheoryRow(
        algorithm="LS93",
        diameter_kind="weak",
        diameter=2.0 * k - 2.0,
        colors=colors,
        rounds=k * colors,
        deterministic=False,
    )


def elkin_neiman_row(n: int, k: int | None = None, c: float = 4.0) -> TheoryRow:
    """This paper (Theorem 1): strong ``(2k−2, (cn)^{1/k}·ln(cn))``."""
    _check_n(n)
    if c <= 3:
        raise ParameterError(f"c must be > 3, got {c}")
    if k is None:
        k = max(1, round(math.log(n)))
    cn = c * n
    colors = cn ** (1.0 / k) * math.log(cn)
    return TheoryRow(
        algorithm="EN16",
        diameter_kind="strong",
        diameter=2.0 * k - 2.0,
        colors=colors,
        rounds=k * colors,
        deterministic=False,
    )


def comparison_rows(n: int, k: int | None = None, c: float = 4.0) -> list[TheoryRow]:
    """The full §1.2 comparison table for a given ``n`` (and optional ``k``)."""
    return [aglp_row(n), ps_row(n), ls_row(n, k), elkin_neiman_row(n, k, c)]
