"""Parameter-sweep framework for multi-seed experiment series.

The benchmark harness runs one fixed table per experiment; this module is
the general tool behind "run X over a grid of parameters and many seeds,
aggregate".  A :class:`Sweep` couples a runner (returning one record per
call) with a parameter grid and a seed range; :func:`run_sweep` executes
it and :func:`aggregate` reduces repeated seeds to mean/min/max columns.

Used by the trade-off example and available to downstream users who want
their own experiment grids without rewriting the loop scaffolding.
"""

from __future__ import annotations

import itertools
import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import ParameterError

__all__ = ["Sweep", "run_sweep", "aggregate"]

Runner = Callable[..., Mapping[str, Any]]


@dataclass
class Sweep:
    """A parameter grid attached to a runner.

    Attributes
    ----------
    runner:
        Called as ``runner(seed=..., **point)`` for every grid point and
        seed; must return a flat record (mapping).
    grid:
        ``parameter -> list of values``; the sweep is the cartesian
        product.
    seeds:
        Seeds to repeat every grid point with.
    """

    runner: Runner
    grid: Mapping[str, Sequence[Any]]
    seeds: Sequence[int] = (0,)

    def points(self) -> list[dict[str, Any]]:
        """The cartesian product of the grid, as dicts (deterministic order)."""
        names = list(self.grid)
        product = itertools.product(*(self.grid[name] for name in names))
        return [dict(zip(names, values)) for values in product]


def run_sweep(sweep: Sweep) -> list[dict[str, Any]]:
    """Execute a sweep; return one record per (grid point, seed).

    Each record is the runner's output plus the grid-point parameters and
    the ``seed`` column (runner outputs win on key collisions — they are
    the measurements).
    """
    records: list[dict[str, Any]] = []
    for point in sweep.points():
        for seed in sweep.seeds:
            measured = dict(sweep.runner(seed=seed, **point))
            record: dict[str, Any] = {**point, "seed": seed}
            record.update(measured)
            records.append(record)
    return records


def aggregate(
    records: Sequence[Mapping[str, Any]],
    group_by: Sequence[str],
    metrics: Sequence[str],
) -> list[dict[str, Any]]:
    """Reduce repeated seeds: mean/min/max of ``metrics`` per group.

    Parameters
    ----------
    records:
        Output of :func:`run_sweep`.
    group_by:
        Key columns defining a group (typically the grid parameters).
    metrics:
        Numeric columns to aggregate; produces ``{metric}_mean``,
        ``{metric}_min`` and ``{metric}_max`` columns.
    """
    if not group_by:
        raise ParameterError("group_by must name at least one column")
    groups: dict[tuple, list[Mapping[str, Any]]] = {}
    for record in records:
        try:
            key = tuple(record[name] for name in group_by)
        except KeyError as exc:
            raise ParameterError(f"record missing group column: {exc}") from exc
        groups.setdefault(key, []).append(record)
    rows: list[dict[str, Any]] = []
    for key, members in groups.items():
        row: dict[str, Any] = dict(zip(group_by, key))
        row["runs"] = len(members)
        for metric in metrics:
            values = [float(member[metric]) for member in members]
            row[f"{metric}_mean"] = statistics.fmean(values)
            row[f"{metric}_min"] = min(values)
            row[f"{metric}_max"] = max(values)
        rows.append(row)
    rows.sort(key=lambda row: tuple(repr(row[name]) for name in group_by))
    return rows
