"""Plain-text table rendering for the benchmark harness.

The benchmarks print the rows recorded in ``EXPERIMENTS.md``; this module
owns the formatting so every experiment emits consistent, diffable text.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["format_value", "format_table", "format_records"]


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell: floats rounded, infinities as ``inf``, rest via str."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if math.isnan(value):
            return "nan"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned plain-text table.

    >>> print(format_table(["a", "b"], [[1, 2.5]], title="demo"))
    demo
    a  b
    -  ---
    1  2.5
    """
    cells = [[format_value(value, precision) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def format_records(
    records: Sequence[Mapping[str, object]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render a list of identical-keyed dicts as a table (keys = headers)."""
    if not records:
        return title or ""
    headers = list(records[0].keys())
    rows = [[record.get(h, "") for h in headers] for record in records]
    return format_table(headers, rows, title=title, precision=precision)
