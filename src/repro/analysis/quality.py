"""Decomposition quality reports.

One :class:`QualityReport` summarises everything the experiments compare:
colour count, strong/weak diameters, cluster connectivity, sizes and cut
edges.  Computation is exact (BFS-based) and intended for laptop-scale
validation graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.decomposition import NetworkDecomposition

__all__ = ["QualityReport", "report"]


@dataclass(frozen=True)
class QualityReport:
    """Measured properties of one network decomposition.

    ``max_strong_diameter`` is ``inf`` when some cluster is disconnected;
    ``num_disconnected_clusters`` counts them (the Linial–Saks failure
    mode that motivates the paper).
    """

    num_vertices: int
    num_edges: int
    num_clusters: int
    num_colors: int
    max_cluster_size: int
    mean_cluster_size: float
    max_strong_diameter: float
    max_weak_diameter: float
    mean_weak_diameter: float
    num_disconnected_clusters: int
    cut_edges: int
    cut_fraction: float
    is_valid_partition: bool
    is_properly_colored: bool

    def row(self) -> dict[str, object]:
        """The report as a flat dict (for table rendering)."""
        return {
            "n": self.num_vertices,
            "m": self.num_edges,
            "clusters": self.num_clusters,
            "colors": self.num_colors,
            "max|C|": self.max_cluster_size,
            "strongD": self.max_strong_diameter,
            "weakD": self.max_weak_diameter,
            "disconn": self.num_disconnected_clusters,
            "cut%": round(100.0 * self.cut_fraction, 2),
        }


def report(decomposition: NetworkDecomposition) -> QualityReport:
    """Measure ``decomposition`` exactly and return its report."""
    graph = decomposition.graph
    sizes = decomposition.cluster_sizes()
    strong = decomposition.strong_diameters()
    weak = decomposition.weak_diameters()
    cluster_of = decomposition.cluster_index_map()
    cut = sum(1 for u, v in graph.edges() if cluster_of[u] != cluster_of[v])
    return QualityReport(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        num_clusters=decomposition.num_clusters,
        num_colors=decomposition.num_colors,
        max_cluster_size=max(sizes, default=0),
        mean_cluster_size=(sum(sizes) / len(sizes)) if sizes else 0.0,
        max_strong_diameter=max(strong, default=0.0),
        max_weak_diameter=max(weak, default=0.0),
        mean_weak_diameter=(sum(weak) / len(weak)) if weak else 0.0,
        num_disconnected_clusters=sum(1 for d in strong if math.isinf(d)),
        cut_edges=cut,
        cut_fraction=cut / graph.num_edges if graph.num_edges else 0.0,
        is_valid_partition=decomposition.is_partition(),
        is_properly_colored=decomposition.is_proper_coloring(),
    )
