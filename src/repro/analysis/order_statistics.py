"""Lemma 5 (MPX order statistics): the heart of the join-probability bound.

Lemma 5 (Miller–Peng–Xu Lemma 4.4, as sharpened in the paper's footnote):
for arbitrary values ``d₁ ≤ … ≤ d_q`` and independent ``δⱼ ~ Exp(β)``,

.. math::
   \\Pr\\bigl[\\text{top two of } δ_j − d_j \\text{ within } 1\\bigr]
   \\;\\le\\; 1 − e^{-β}.

Equivalently: a vertex joins the current block (gap > 1) with probability
at least ``e^{-β} = (cn)^{-1/k}`` *whatever* the distance profile of its
competitors — the fact driving Claim 6.  This module provides the bound,
a Monte-Carlo estimator, and the exact closed form for the ``q = 1`` case,
all used by experiment E5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ParameterError
from ..rng import DEFAULT_SEED, stream

__all__ = [
    "lemma5_bound",
    "join_probability_lower_bound",
    "GapEstimate",
    "estimate_within_one_probability",
]


def lemma5_bound(beta: float) -> float:
    """Upper bound ``1 − e^{-β}`` on Pr[top two shifted values within 1]."""
    if beta <= 0:
        raise ParameterError(f"beta must be positive, got {beta}")
    return 1.0 - math.exp(-beta)


def join_probability_lower_bound(beta: float) -> float:
    """Lower bound ``e^{-β}`` on the per-phase join probability (Claim 6)."""
    if beta <= 0:
        raise ParameterError(f"beta must be positive, got {beta}")
    return math.exp(-beta)


@dataclass(frozen=True)
class GapEstimate:
    """Monte-Carlo estimate of Pr[gap ≤ 1] with a confidence half-width.

    ``half_width`` is the 99.7% (3σ) normal-approximation half-width —
    crude but ample for checking a one-sided bound.
    """

    probability: float
    trials: int
    half_width: float

    @property
    def upper_confidence(self) -> float:
        """``probability + half_width`` (conservative upper end)."""
        return min(1.0, self.probability + self.half_width)


def estimate_within_one_probability(
    distances: Sequence[float],
    beta: float,
    trials: int = 20_000,
    seed: int = DEFAULT_SEED,
) -> GapEstimate:
    """Estimate Pr[top two of ``δⱼ − dⱼ`` within 1] by Monte Carlo.

    Follows the paper's convention for a single competitor (``q = 1``):
    the second value is taken to be 0, so the event is ``δ₁ − d₁ ≤ 1``.

    Parameters
    ----------
    distances:
        The ``dⱼ`` values (arbitrary non-negative reals).
    beta:
        Exponential rate.
    trials:
        Monte-Carlo sample count.
    seed:
        RNG seed (deterministic estimator).
    """
    if not distances:
        raise ParameterError("need at least one distance")
    if beta <= 0:
        raise ParameterError(f"beta must be positive, got {beta}")
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    rng = stream(seed, "lemma5", beta, tuple(distances), trials)
    hits = 0
    q = len(distances)
    for _ in range(trials):
        best = -math.inf
        second = -math.inf
        for d in distances:
            value = rng.expovariate(beta) - d
            if value > best:
                second = best
                best = value
            elif value > second:
                second = value
        if q == 1:
            second = 0.0
        if best - second <= 1.0:
            hits += 1
    probability = hits / trials
    sigma = math.sqrt(max(probability * (1 - probability), 1e-12) / trials)
    return GapEstimate(probability=probability, trials=trials, half_width=3.0 * sigma)
