"""Gap statistics of carving phases: Lemma 5 *inside* real runs.

Experiment E5 checks Lemma 5 on synthetic distance profiles.  This module
measures the same quantity inside actual executions: the carving kernel
records every vertex's top-two shifted values
(:class:`~repro.core.carving.TopTwo`), so each phase yields an empirical
distribution of gaps ``m₁ − m₂`` and a realised join rate.  Lemma 5 says
every vertex joins with *marginal* probability at least ``e^{-β}``
whatever its competition, so the join rate averaged over independent
seeds must sit above that floor, phase after phase, as the graph shrinks.
(A single phase's rate can dip below it: outcomes within a phase are
correlated — one large broadcast suppresses a whole region.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.carving import PhaseOutcome, carve_block
from ..core.shifts import sample_phase_radii
from ..errors import ParameterError
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED

__all__ = ["GapStatistics", "phase_gap_statistics", "gap_profile"]


@dataclass(frozen=True)
class GapStatistics:
    """Summary of one phase's gap distribution.

    ``join_rate`` is the realised fraction of active vertices with gap
    > 1; ``floor`` is Lemma 5's lower bound ``e^{-β}``.
    """

    active: int
    joined: int
    join_rate: float
    floor: float
    mean_gap: float
    median_gap: float
    max_gap: float
    lone_broadcasts: int

    @property
    def above_floor(self) -> bool:
        """Whether this phase's realised join rate clears the Lemma 5 floor.

        Descriptive only: the floor bounds each vertex's *marginal*
        probability, but join outcomes within one phase are strongly
        correlated (one large broadcast suppresses a whole region), so a
        single phase can legitimately land below it.  The rigorous check
        averages the rate over independent seeds — the expectation is
        ≥ ``e^{-β}`` (see ``tests/analysis/test_gaps_sweeps.py``).
        """
        return self.join_rate >= self.floor


def phase_gap_statistics(outcome: PhaseOutcome, beta: float) -> GapStatistics:
    """Summarise the gaps of one carved phase."""
    if beta <= 0:
        raise ParameterError(f"beta must be positive, got {beta}")
    gaps = sorted(record.gap for record in outcome.top_two.values())
    active = len(gaps)
    if active == 0:
        raise ParameterError("outcome contains no active vertices")
    joined = len(outcome.block)
    return GapStatistics(
        active=active,
        joined=joined,
        join_rate=joined / active,
        floor=math.exp(-beta),
        mean_gap=sum(gaps) / active,
        median_gap=gaps[active // 2],
        max_gap=gaps[-1],
        lone_broadcasts=sum(
            1 for record in outcome.top_two.values() if record.count == 1
        ),
    )


def gap_profile(
    graph: Graph,
    beta: float,
    phases: int = 10,
    seed: int = DEFAULT_SEED,
) -> list[GapStatistics]:
    """Run up to ``phases`` carving phases and collect gap statistics.

    Stops early when the graph is exhausted.  This is the data series
    behind the in-run Lemma 5 check: every element's ``join_rate`` should
    clear ``e^{-β}`` (up to noise) independently of how depleted the
    graph already is — Claim 6's "regardless of the outcome of previous
    phases".
    """
    if phases < 1:
        raise ParameterError(f"phases must be >= 1, got {phases}")
    active = set(graph.vertices())
    series: list[GapStatistics] = []
    for phase in range(1, phases + 1):
        if not active:
            break
        radii = sample_phase_radii(seed, phase, active, beta)
        outcome = carve_block(graph, active, radii)
        series.append(phase_gap_statistics(outcome, beta))
        active -= outcome.block
    return series
