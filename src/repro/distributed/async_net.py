"""The asynchronous round engine: event-driven delivery under an adversary.

:class:`AsyncNetwork` executes the same
:class:`~repro.distributed.node.NodeAlgorithm` contract as
:class:`~repro.distributed.network.SyncNetwork`, but message delivery is
governed by a :class:`~repro.distributed.schedule.Schedule` (bounded
delays, adversarial orderings) and an optional
:class:`~repro.distributed.faults.FaultPlan` (seeded node crash/recovery
and message drops).  Logical rounds survive asynchrony via the
α-synchronizer (:mod:`.synchronizer`): messages are tagged with their
sender's pulse and a pulse executes only when safe, so ``step()`` still
advances one logical round — what the adversary controls is each
message's *arrival time* inside its pulse (inbox order), each node's
virtual clock (execution order and skew), and, with faults, which
messages and nodes participate at all.

Determinism contract: a run is a pure function of
``(graph, algorithms, seed, delivery, faults)``.  Schedules and fault
plans derive their streams from ``(seed, spec)``, events are totally
ordered by ``(arrival_time, order, seq)``, and nodes execute in
``(ready_time, id)`` order — replaying the same pair is byte-identical
(``tests/distributed/test_schedule_properties.py``).

Equivalence contract: under the FIFO schedule with no fault plan, every
observable — decompositions, :class:`~repro.distributed.metrics
.NetworkStats`, telemetry round streams, trace events — is bit-identical
to a :class:`SyncNetwork` run: delays are zero, arrival order equals
send order (which equals the sync engine's sender-sorted inbox order),
and ready times degenerate to ascending node id.

Inbox ordering is the one semantic difference from the sync engine:
inboxes arrive in *arrival order*, not sorted by sender.  Protocols
whose per-round merges are order-oblivious (EN/LS/MPX — commutative
min/max merges, see ``engine/broadcast.py``) are unaffected; a protocol
that is not order-oblivious will diverge under non-FIFO schedules, which
is precisely what the harness exists to detect.

Bookkeeping parity: messages to halted receivers are dropped at flush
and counted as sent (sync semantics); fault-dropped messages are also
counted as sent, never delivered; messages to *crashed* receivers are
dropped — or buffered for redelivery — at their delivery pulse.  Async-
only counters live in :class:`AsyncStats`, never in ``NetworkStats``,
so the stats equality the tier-1 equivalence suites assert stays exact.

Every live instance registers in a module-level weak set; the suite-wide
leak guard in ``tests/conftest.py`` fails any test that abandons a
network with undelivered messages (call :meth:`AsyncNetwork.close` to
opt a deliberately-abandoned network out).
"""

from __future__ import annotations

import weakref
from collections import defaultdict
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import CongestViolation, ParameterError, SimulationError
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED, stream
from .faults import FaultPlan
from .message import Message
from .metrics import NetworkStats
from .node import Context, NodeAlgorithm
from .schedule import Schedule, parse_schedule
from .synchronizer import AlphaSynchronizer
from .tracing import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.causality import CausalLog
    from ..telemetry.rounds import RoundStream

__all__ = ["AsyncNetwork", "AsyncStats", "live_networks"]

#: Async-only round-stream columns (enabled for non-FIFO/faulty runs).
EXTRA_ROUND_KEYS = ("delayed", "dropped", "reordered")

#: Weak registry of live engines, consumed by the test-suite leak guard.
_REGISTRY: "weakref.WeakSet[AsyncNetwork]" = weakref.WeakSet()


def live_networks() -> "list[AsyncNetwork]":
    """Currently-alive :class:`AsyncNetwork` instances (leak guard hook)."""
    return list(_REGISTRY)


@dataclass
class AsyncStats:
    """Asynchrony/fault counters, separate from :class:`NetworkStats`.

    Kept out of the shared stats object on purpose: the sync/batch/async
    equivalence tests compare ``NetworkStats`` dataclasses for equality,
    and these counters are identically zero only on FIFO fault-free runs.
    """

    delayed: int = 0      #: messages assigned a positive delivery delay
    reordered: int = 0    #: inbox positions out of sender order
    dropped: int = 0      #: messages lost to faults (drop coins + crashes)
    redelivered: int = 0  #: buffered messages delivered after recovery
    crashes: int = 0      #: crash transitions
    recoveries: int = 0   #: recovery transitions
    max_skew: float = 0.0  #: largest within-pulse virtual-clock spread

    def as_dict(self) -> dict:
        return {
            "delayed": self.delayed,
            "reordered": self.reordered,
            "dropped": self.dropped,
            "redelivered": self.redelivered,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "max_skew": round(self.max_skew, 6),
        }


class AsyncNetwork:
    """Asynchronous message-passing simulator (see module docstring).

    Parameters match :class:`SyncNetwork` plus:

    delivery:
        A :mod:`.schedule` spec string (or :class:`Schedule`);
        default ``"fifo"``.
    faults:
        A :mod:`.faults` spec string (or :class:`FaultPlan`), or
        ``None`` for a fault-free run.
    """

    def __init__(
        self,
        graph: Graph,
        algorithms: Sequence[NodeAlgorithm] | Callable[[int], NodeAlgorithm],
        seed: int = DEFAULT_SEED,
        word_budget: int | None = None,
        tracer: "TraceRecorder | None" = None,
        rounds: "RoundStream | None" = None,
        causal: "CausalLog | None" = None,
        delivery: "str | Schedule | None" = "fifo",
        faults: "str | FaultPlan | None" = None,
    ) -> None:
        self.graph = graph
        n = graph.num_vertices
        if callable(algorithms):
            self._algorithms = [algorithms(v) for v in range(n)]
        else:
            self._algorithms = list(algorithms)
        if len(self._algorithms) != n:
            raise SimulationError(
                f"need one algorithm per vertex: got {len(self._algorithms)} for n={n}"
            )
        # Node contexts are identical to the sync engine's — same private
        # rng streams, so node-local randomness cannot depend on backend.
        self._contexts = [
            Context(self, v, graph.neighbors(v), stream(seed, "node", v))
            for v in range(n)
        ]
        self._schedule = parse_schedule(delivery, seed)
        self._faults = FaultPlan.parse(faults)
        if self._faults is not None:
            for window in self._faults.windows:
                if not 0 <= window.node < n:
                    raise ParameterError(
                        f"crash window names node {window.node}, graph has n={n}"
                    )
            self._faults.reset(seed)
        self._word_budget = word_budget
        self._tracer = tracer
        self._rounds = rounds
        self._causal = causal
        self._extras_enabled = rounds is not None and (
            self._schedule.bound > 0 or self._faults is not None
        )
        if self._extras_enabled:
            rounds.enable_extras(*EXTRA_ROUND_KEYS)
        # Causal timing extras obey the same gate as the round-stream
        # adversary columns: fault-free FIFO logs stay row-identical to
        # the sync engine's.
        if causal is not None and (
            self._schedule.bound > 0 or self._faults is not None
        ):
            causal.enable_extras()
        self._synchronizer = AlphaSynchronizer(graph)
        self._live: list[int] = list(range(n))
        self._halted_seen: set[int] = set()
        self._crashed: set[int] = set()
        self._outbox: list[Message] = []
        #: Event queue: (arrival_time, order, seq, send_time, Message) —
        #: every entry is tagged for the next pulse; the heap drains
        #: fully per step.  ``seq`` is unique, so the trailing fields
        #: never get compared.
        self._events: list[tuple[float, int, int, float, Message]] = []
        self._redelivery: dict[int, list[Message]] = {}
        self._seq = 0
        self._round = 0
        self._started = False
        self.closed = False
        self.stats = NetworkStats()
        self.async_stats = AsyncStats()
        self._round_delayed = 0
        self._round_dropped = 0
        self._round_reordered = 0
        _REGISTRY.add(self)

    # ------------------------------------------------------------------
    # Introspection (SyncNetwork-compatible surface)
    # ------------------------------------------------------------------
    @property
    def current_round(self) -> int:
        """The pulse currently executing (0 before/during ``on_start``)."""
        return self._round

    @property
    def num_nodes(self) -> int:
        return len(self._algorithms)

    def algorithm(self, v: int) -> NodeAlgorithm:
        return self._algorithms[v]

    def context(self, v: int) -> Context:
        return self._contexts[v]

    def halted(self, v: int) -> bool:
        return self._contexts[v].halted

    def crashed(self, v: int) -> bool:
        """Whether node ``v`` is currently down (crashed, not halted)."""
        return v in self._crashed

    @property
    def all_halted(self) -> bool:
        return all(ctx.halted for ctx in self._contexts)

    @property
    def messages_in_flight(self) -> int:
        """Undelivered messages: scheduled events + redelivery buffers."""
        return len(self._events) + sum(
            len(buffer) for buffer in self._redelivery.values()
        )

    @property
    def schedule(self) -> Schedule:
        return self._schedule

    @property
    def fault_plan(self) -> "FaultPlan | None":
        return self._faults

    def clock(self, v: int) -> float:
        """Node ``v``'s virtual clock (α-synchronizer pulse time)."""
        return self._synchronizer.clock(v)

    @property
    def leaked(self) -> bool:
        """Abandoned with undelivered messages (leak-guard predicate)."""
        return (
            not self.closed
            and self.messages_in_flight > 0
            and not self.all_halted
        )

    def close(self) -> None:
        """Mark this network deliberately abandoned (silences the guard)."""
        self.closed = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run every node's ``on_start`` callback (idempotent)."""
        if self._started:
            return
        self._started = True
        for v, algorithm in enumerate(self._algorithms):
            ctx = self._contexts[v]
            if not ctx.halted:
                algorithm.on_start(ctx)
        self._flush_outbox()

    def step(self) -> None:
        """Execute one pulse (= one logical synchronous round)."""
        if not self._started:
            self.start()
        self._round += 1
        self.stats.rounds += 1
        pulse = self._round
        inboxes = self._apply_faults_and_deliver(pulse)
        arrivals = {v: inbox[-1][0] for v, inbox in inboxes.items() if inbox}
        executing = [
            v
            for v in self._live
            if not self._contexts[v].halted and v not in self._crashed
        ]
        def waived(u: int) -> bool:
            return self._contexts[u].halted or u in self._crashed

        order = self._synchronizer.ready_times(pulse, executing, arrivals, waived)
        self.async_stats.max_skew = self._synchronizer.max_skew
        any_halted = len(executing) < len(self._live) and any(
            self._contexts[v].halted for v in self._live
        )
        for _ready, v in order:
            ctx = self._contexts[v]
            entries = inboxes.get(v, ())
            inbox = [message for _time, _sent, message in entries]
            self.stats.messages_delivered += len(inbox)
            if self._causal is not None and entries:
                self._log_deliveries(v, _ready, entries)
            self._algorithms[v].on_round(ctx, inbox)
            if ctx.halted:
                any_halted = True
        if any_halted:
            self._live = [v for v in self._live if not self._contexts[v].halted]
        self._flush_outbox()

    def run_rounds(self, count: int) -> None:
        """Execute exactly ``count`` pulses."""
        for _ in range(count):
            self.step()

    def run_until_quiet(self, max_rounds: int = 1_000_000) -> int:
        """Run until the event queue is empty or everyone has halted.

        Redelivery buffers parked at permanently-crashed nodes do not
        keep the loop alive (they can never drain); they still count in
        :attr:`messages_in_flight` and trip the leak guard.
        """
        if not self._started:
            self.start()
        executed = 0
        while self._events and not self.all_halted:
            if executed >= max_rounds:
                raise SimulationError(
                    f"network not quiet after {max_rounds} rounds"
                )
            self.step()
            executed += 1
        return executed

    def finish_rounds(self) -> None:
        """Flush the final round to an attached round stream."""
        if self._rounds is not None:
            live = sum(1 for ctx in self._contexts if not ctx.halted)
            self._rounds.end_round(self._round, self.stats, live)

    # ------------------------------------------------------------------
    # Engine internals
    # ------------------------------------------------------------------
    def _log_deliveries(
        self,
        v: int,
        ready: float,
        entries: "Sequence[tuple[float, float, Message]]",
    ) -> None:
        """Causal edges for one delivered inbox, in arrival order.

        Consecutive ``(sender, sent_round)`` runs aggregate into one
        edge record — under FIFO with no faults the arrival order *is*
        the sync engine's sender-sorted order, so the logs coincide
        row for row.  On adversarial runs each record carries the
        timing extras; a sentinel arrival of ``0.0`` marks a
        redelivered (crash-buffered) edge.
        """
        causal = self._causal
        extras = causal.extras_enabled
        arrival, send_time, message = entries[0]
        sender, sent_round = message.sender, message.sent_round
        last_arrival, count = arrival, 0
        pulse = self._round

        def flush() -> None:
            if not extras:
                causal.message(sender, sent_round, v, pulse, count)
                return
            fault = (
                self._faults.buffered_rounds(sent_round, pulse)
                if last_arrival == 0.0 and self._faults is not None
                else 0
            )
            causal.message(
                sender,
                sent_round,
                v,
                pulse,
                count,
                send_time=send_time,
                arrive=last_arrival,
                recv_time=ready,
                fault=fault,
            )

        for arrival, next_send_time, message in entries:
            if message.sender != sender or message.sent_round != sent_round:
                flush()
                sender, sent_round = message.sender, message.sent_round
                send_time, count = next_send_time, 0
            last_arrival = arrival
            count += 1
        flush()

    def _apply_faults_and_deliver(
        self, pulse: int
    ) -> dict[int, list[tuple[float, float, Message]]]:
        """Fault transitions + event-queue drain for ``pulse``.

        Returns per-receiver inboxes in arrival order, each entry
        ``(arrival_time, send_time, message)``.  Redelivered messages
        (buffered while their receiver was crashed) lead the inbox —
        they are older than anything arriving this pulse — and carry
        the sentinel arrival time ``0.0`` (real arrivals are ``>= 1``),
        which the causal log records as a fault edge.
        """
        plan = self._faults
        inboxes: dict[int, list[tuple[float, float, Message]]] = {}
        if plan is not None:
            for window in plan.windows:
                v = window.node
                if self._contexts[v].halted:
                    continue  # halted nodes left the computation; crashes moot
                down = plan.crashed(v, pulse)
                if down and v not in self._crashed:
                    self._crashed.add(v)
                    self.async_stats.crashes += 1
                    plan.record("crash", pulse, node=v)
                elif not down and v in self._crashed:
                    self._crashed.discard(v)
                    self.async_stats.recoveries += 1
                    plan.record("recover", pulse, node=v)
                    buffered = self._redelivery.pop(v, None)
                    if buffered:
                        self.async_stats.redelivered += len(buffered)
                        plan.record("redeliver", pulse, node=v, count=len(buffered))
                        inboxes[v] = [
                            (0.0, float(message.sent_round), message)
                            for message in buffered
                        ]
        while self._events:
            arrival, _order, _seq, send_time, message = heappop(self._events)
            v = message.receiver
            if v in self._crashed:
                if plan is not None and plan.redeliver:
                    self._redelivery.setdefault(v, []).append(message)
                else:
                    self.async_stats.dropped += 1
                    self._round_dropped += 1
                    if plan is not None:
                        plan.record(
                            "crash-drop", pulse, node=v, sender=message.sender
                        )
                continue
            inbox = inboxes.setdefault(v, [])
            if inbox and inbox[-1][2].sender > message.sender:
                self.async_stats.reordered += 1
                self._round_reordered += 1
            inbox.append((arrival, send_time, message))
        return inboxes

    def _enqueue(self, message: Message) -> None:
        self._outbox.append(message)

    def _flush_outbox(self) -> None:
        """End-of-pulse accounting + event scheduling.

        The bookkeeping sequence (halt detection, tracer events, traffic
        stats, budget enforcement, round-stream emission, halted-receiver
        drops) replicates ``SyncNetwork._flush_outbox`` operation for
        operation — under a FIFO schedule with no faults the two engines
        keep literally the same books.
        """
        newly_halted: list[int] = []
        if (
            self._tracer is not None
            or self._rounds is not None
            or self._causal is not None
        ):
            for v, ctx in enumerate(self._contexts):
                if ctx.halted and v not in self._halted_seen:
                    self._halted_seen.add(v)
                    newly_halted.append(v)
        if self._tracer is not None:
            for message in self._outbox:
                self._tracer.on_send(message)
            for v in newly_halted:
                self._tracer.on_halt(v, self._round)
        if self._causal is not None:
            for v in newly_halted:
                self._causal.halt(v, self._round)
        edge_words: dict[tuple[int, int], int] = defaultdict(int)
        for message in self._outbox:
            self.stats.messages_sent += 1
            self.stats.words_sent += message.words
            key = (message.sender, message.receiver)
            edge_words[key] += message.words
        if edge_words:
            peak = max(edge_words.values())
            self.stats.max_words_per_edge_round = max(
                self.stats.max_words_per_edge_round, peak
            )
            if self._word_budget is not None and peak > self._word_budget:
                offender = max(edge_words, key=edge_words.get)
                raise CongestViolation(
                    f"edge {offender} carried {edge_words[offender]} words in round "
                    f"{self._round}, budget is {self._word_budget}"
                )
        # Schedule surviving messages as delivery events for the next
        # pulse.  Drop coins are rolled here, in send order, *after* the
        # bandwidth accounting: a lost message still crossed the wire.
        plan, sched, clocks = self._faults, self._schedule, self._synchronizer.clocks
        for message in self._outbox:
            if self._contexts[message.receiver].halted:
                continue  # sync semantics: counted as sent, silently dropped
            if plan is not None and plan.drops(
                message.sender, message.receiver, self._round
            ):
                self.async_stats.dropped += 1
                self._round_dropped += 1
                continue
            seq = self._seq
            self._seq += 1
            delay, order = sched.assign(
                message.sender, message.receiver, self._round, seq
            )
            if delay > 0.0:
                self.async_stats.delayed += 1
                self._round_delayed += 1
            heappush(
                self._events,
                (
                    clocks[message.sender] + 1.0 + delay,
                    order,
                    seq,
                    clocks[message.sender],
                    message,
                ),
            )
        if self._rounds is not None:
            if self._outbox:
                self._rounds.note_frontier(
                    len({message.sender for message in self._outbox})
                )
            self._rounds.note_halts(len(newly_halted))
            if self._extras_enabled:
                self._rounds.note_extras(
                    delayed=self._round_delayed,
                    dropped=self._round_dropped,
                    reordered=self._round_reordered,
                )
            live = sum(1 for ctx in self._contexts if not ctx.halted)
            self._rounds.end_round(self._round, self.stats, live)
        self._round_delayed = self._round_dropped = self._round_reordered = 0
        self._outbox = []
