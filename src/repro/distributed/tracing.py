"""Execution tracing for the simulator.

A :class:`TraceRecorder` attached to a :class:`~repro.distributed.network.SyncNetwork`
records message sends and node halts round by round — the debugging
companion for protocol development, and the data source for the message
timelines in the examples.  Recording is opt-in (the engine pays nothing
when no tracer is attached) and bounded (a ``limit`` guards against
accidentally tracing a million-message run into memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .message import Message

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``kind`` is ``"send"`` (payload = message payload) or ``"halt"``
    (payload = ``None``); ``round`` is the round in which it happened.
    """

    round: int
    kind: str
    node: int
    peer: int | None
    payload: Any


@dataclass
class TraceRecorder:
    """Bounded in-memory event recorder.

    Parameters
    ----------
    limit:
        Maximum number of events kept; older events are *not* evicted —
        recording simply stops (and ``truncated`` flips) so that traces
        always describe a prefix of the run.
    node_filter:
        Optional predicate on node id; events from other nodes are
        dropped.
    """

    limit: int = 100_000
    node_filter: Callable[[int], bool] | None = None
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False

    # ------------------------------------------------------------------
    # Hooks called by the engine
    # ------------------------------------------------------------------
    def on_send(self, message: Message) -> None:
        """Record a message send."""
        if self.node_filter is not None and not self.node_filter(message.sender):
            return
        self._append(
            TraceEvent(
                round=message.sent_round,
                kind="send",
                node=message.sender,
                peer=message.receiver,
                payload=message.payload,
            )
        )

    def on_halt(self, node: int, round_number: int) -> None:
        """Record a node halting."""
        if self.node_filter is not None and not self.node_filter(node):
            return
        self._append(
            TraceEvent(round=round_number, kind="halt", node=node, peer=None, payload=None)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sends(self) -> Iterator[TraceEvent]:
        """All recorded send events, in order."""
        return (event for event in self.events if event.kind == "send")

    def halts(self) -> Iterator[TraceEvent]:
        """All recorded halt events, in order."""
        return (event for event in self.events if event.kind == "halt")

    def rounds(self) -> dict[int, list[TraceEvent]]:
        """Events grouped by round."""
        grouped: dict[int, list[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.round, []).append(event)
        return grouped

    def messages_between(self, a: int, b: int) -> list[TraceEvent]:
        """Send events on the (directed both ways) edge ``{a, b}``."""
        return [
            event
            for event in self.sends()
            if {event.node, event.peer} == {a, b}
        ]

    def _append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.limit:
            self.truncated = True
            return
        self.events.append(event)
