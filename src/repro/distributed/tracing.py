"""Execution tracing for the simulator (compatibility shim).

.. deprecated::
    The event-tracing machinery moved into the unified telemetry layer:
    :class:`TraceRecorder` is now an alias of
    :class:`repro.telemetry.events.EventRecorder` and
    :class:`TraceEvent` lives in :mod:`repro.telemetry.events`.  This
    module re-exports both so existing imports keep working; new code
    should import from :mod:`repro.telemetry` (and consider the
    aggregated :class:`~repro.telemetry.rounds.RoundStream` for
    round-level metrics instead of per-message events).

A ``TraceRecorder`` attached to a
:class:`~repro.distributed.network.SyncNetwork` (or the batch engine)
records message sends and node halts round by round.  Recording is
opt-in (the engine pays nothing when no tracer is attached) and bounded
(a ``limit`` guards against accidentally tracing a million-message run
into memory — recording stops at the limit so traces are always a
prefix of the run).
"""

from __future__ import annotations

from ..telemetry.events import EventRecorder, TraceEvent

__all__ = ["TraceEvent", "TraceRecorder"]

#: Deprecated alias — see the module docstring.
TraceRecorder = EventRecorder
