"""The synchronous round engine.

:class:`SyncNetwork` executes a :class:`~repro.distributed.node.NodeAlgorithm`
per vertex of a :class:`~repro.graphs.graph.Graph` under the standard
synchronous message-passing model (§1.1 of the paper):

* computation proceeds in global rounds;
* a message sent during round ``t`` is delivered at the start of round
  ``t + 1``;
* in each round every non-halted node receives its inbox, computes, and
  sends messages to neighbours.

Bandwidth can be policed (CONGEST mode) by setting ``word_budget``: if the
messages crossing one directed edge in one round exceed the budget, the
engine raises :class:`~repro.errors.CongestViolation`.  With
``word_budget=None`` (LOCAL mode) bandwidth is unlimited but still
*measured*, so experiments can report the budget an algorithm would need.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import CongestViolation, SimulationError
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED, stream
from .message import Message
from .metrics import NetworkStats
from .node import Context, NodeAlgorithm
from .tracing import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.causality import CausalLog
    from ..telemetry.rounds import RoundStream

__all__ = ["SyncNetwork"]


class SyncNetwork:
    """Synchronous message-passing simulator over a fixed graph.

    Parameters
    ----------
    graph:
        Communication topology.
    algorithms:
        One :class:`NodeAlgorithm` per vertex (``len == n``), or a factory
        ``vertex -> NodeAlgorithm``.
    seed:
        Root seed; node ``v`` receives the private stream
        ``stream(seed, "node", v)``.
    word_budget:
        Per-directed-edge, per-round word limit (CONGEST mode), or ``None``
        for the LOCAL model (unbounded but measured).
    tracer:
        Optional per-message event subscriber
        (:class:`~repro.telemetry.events.EventRecorder`).
    rounds:
        Optional per-round metrics subscriber
        (:class:`~repro.telemetry.rounds.RoundStream`): one
        identically-keyed row per round, matching the batch engine's.
    causal:
        Optional causal provenance subscriber
        (:class:`~repro.telemetry.causality.CausalLog`): one aggregated
        parent-edge record per ``(sender, send round)`` run of each
        delivered inbox, plus one halt record per halted node — emitted
        in the engine's deterministic order (receivers ascending,
        sender-sorted inboxes), which the batch engine reproduces
        row-identically.

    Notes
    -----
    The engine is deterministic: inboxes are sorted by sender and nodes are
    stepped in ascending id order, so a fixed ``(graph, algorithms, seed)``
    triple always yields identical runs.

    **Inbox-order contract.** The per-round inbox handed to ``on_round``
    is *sorted by sender id* — this is part of the node API, not an
    accident of the queue: :meth:`step` sorts each inbox explicitly, so
    the internal order of ``_pending`` (outbox flush order) is
    deliberately irrelevant and any permutation of it yields an
    identical run (``tests/distributed/test_network.py::
    TestInboxOrderContract``).  Protocols may therefore rely on
    sender-sorted delivery; protocols that must *survive* arbitrary
    arrival order are exercised on the async engine
    (:class:`~repro.distributed.async_net.AsyncNetwork`), where inboxes
    arrive in schedule order instead.
    """

    def __init__(
        self,
        graph: Graph,
        algorithms: Sequence[NodeAlgorithm] | Callable[[int], NodeAlgorithm],
        seed: int = DEFAULT_SEED,
        word_budget: int | None = None,
        tracer: "TraceRecorder | None" = None,
        rounds: "RoundStream | None" = None,
        causal: "CausalLog | None" = None,
    ) -> None:
        self.graph = graph
        n = graph.num_vertices
        if callable(algorithms):
            self._algorithms = [algorithms(v) for v in range(n)]
        else:
            self._algorithms = list(algorithms)
        if len(self._algorithms) != n:
            raise SimulationError(
                f"need one algorithm per vertex: got {len(self._algorithms)} for n={n}"
            )
        self._contexts = [
            Context(self, v, graph.neighbors(v), stream(seed, "node", v))
            for v in range(n)
        ]
        self._word_budget = word_budget
        self._tracer = tracer
        self._rounds = rounds
        self._causal = causal
        # Live-node list (ascending): rebuilt only on rounds where some
        # node halts, so late rounds of a mostly-carved graph dispatch
        # O(survivors) instead of rescanning all n vertices.
        self._live: list[int] = list(range(n))
        self._halted_seen: set[int] = set()
        self._outbox: list[Message] = []
        self._pending: list[Message] = []
        self._round = 0
        self._started = False
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def current_round(self) -> int:
        """The round currently executing (0 before/during ``on_start``)."""
        return self._round

    @property
    def num_nodes(self) -> int:
        """Number of nodes (= vertices of the graph)."""
        return len(self._algorithms)

    def algorithm(self, v: int) -> NodeAlgorithm:
        """The algorithm instance running at vertex ``v``."""
        return self._algorithms[v]

    def context(self, v: int) -> Context:
        """The context of vertex ``v`` (for harness-level inspection)."""
        return self._contexts[v]

    def halted(self, v: int) -> bool:
        """Whether vertex ``v`` has halted."""
        return self._contexts[v].halted

    @property
    def all_halted(self) -> bool:
        """Whether every node has halted."""
        return all(ctx.halted for ctx in self._contexts)

    @property
    def messages_in_flight(self) -> int:
        """Messages awaiting delivery at the next round."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Run every node's ``on_start`` callback (idempotent)."""
        if self._started:
            return
        self._started = True
        for v, algorithm in enumerate(self._algorithms):
            ctx = self._contexts[v]
            if not ctx.halted:
                algorithm.on_start(ctx)
        self._flush_outbox()

    def step(self) -> None:
        """Execute one synchronous round."""
        if not self._started:
            self.start()
        self._round += 1
        self.stats.rounds += 1
        inboxes: dict[int, list[Message]] = defaultdict(list)
        for message in self._pending:
            inboxes[message.receiver].append(message)
        self._pending = []
        any_halted = False
        for v in self._live:
            ctx = self._contexts[v]
            if ctx.halted:
                any_halted = True
                continue
            inbox = sorted(inboxes.get(v, ()), key=lambda msg: msg.sender)
            self.stats.messages_delivered += len(inbox)
            if self._causal is not None and inbox:
                self._log_deliveries(v, inbox)
            self._algorithms[v].on_round(ctx, inbox)
            if ctx.halted:
                any_halted = True
        if any_halted:
            self._live = [v for v in self._live if not self._contexts[v].halted]
        self._flush_outbox()

    def run_rounds(self, count: int) -> None:
        """Execute exactly ``count`` rounds."""
        for _ in range(count):
            self.step()

    def run_until_quiet(self, max_rounds: int = 1_000_000) -> int:
        """Run until no messages are in flight or everyone has halted.

        Returns the number of rounds executed.  Raises
        :class:`SimulationError` if the bound is exceeded (a liveness bug
        in the algorithm under test).
        """
        if not self._started:
            self.start()
        executed = 0
        while self._pending and not self.all_halted:
            if executed >= max_rounds:
                raise SimulationError(
                    f"network not quiet after {max_rounds} rounds"
                )
            self.step()
            executed += 1
        return executed

    def finish_rounds(self) -> None:
        """Flush the final round to an attached round stream.

        The sync engine emits at the end of every flush, so this is a
        no-op here (``end_round`` is idempotent per round) — it exists
        so drivers can finish either backend uniformly.
        """
        if self._rounds is not None:
            live = sum(1 for ctx in self._contexts if not ctx.halted)
            self._rounds.end_round(self._round, self.stats, live)

    # ------------------------------------------------------------------
    # Engine internals (called from Context)
    # ------------------------------------------------------------------
    def _log_deliveries(self, v: int, inbox: "Sequence[Message]") -> None:
        """One causal edge per ``(sender, sent_round)`` run of ``inbox``.

        The inbox is sender-sorted, so aggregating consecutive runs
        yields exactly one record per sending neighbour per round — the
        shape the batch engine derives from its broadcast columns.
        """
        causal = self._causal
        sender, sent_round = inbox[0].sender, inbox[0].sent_round
        count = 0
        for message in inbox:
            if message.sender != sender or message.sent_round != sent_round:
                causal.message(sender, sent_round, v, self._round, count)
                sender, sent_round, count = message.sender, message.sent_round, 0
            count += 1
        causal.message(sender, sent_round, v, self._round, count)

    def _enqueue(self, message: Message) -> None:
        self._outbox.append(message)

    def _flush_outbox(self) -> None:
        """Move sent messages into the pending queue, enforcing bandwidth."""
        newly_halted: list[int] = []
        if (
            self._tracer is not None
            or self._rounds is not None
            or self._causal is not None
        ):
            for v, ctx in enumerate(self._contexts):
                if ctx.halted and v not in self._halted_seen:
                    self._halted_seen.add(v)
                    newly_halted.append(v)
        if self._tracer is not None:
            for message in self._outbox:
                self._tracer.on_send(message)
            for v in newly_halted:
                self._tracer.on_halt(v, self._round)
        if self._causal is not None:
            for v in newly_halted:
                self._causal.halt(v, self._round)
        edge_words: dict[tuple[int, int], int] = defaultdict(int)
        for message in self._outbox:
            self.stats.messages_sent += 1
            self.stats.words_sent += message.words
            key = (message.sender, message.receiver)
            edge_words[key] += message.words
        if edge_words:
            peak = max(edge_words.values())
            self.stats.max_words_per_edge_round = max(
                self.stats.max_words_per_edge_round, peak
            )
            if self._word_budget is not None and peak > self._word_budget:
                offender = max(edge_words, key=edge_words.get)
                raise CongestViolation(
                    f"edge {offender} carried {edge_words[offender]} words in round "
                    f"{self._round}, budget is {self._word_budget}"
                )
        if self._rounds is not None:
            if self._outbox:
                self._rounds.note_frontier(
                    len({message.sender for message in self._outbox})
                )
            self._rounds.note_halts(len(newly_halted))
            live = sum(1 for ctx in self._contexts if not ctx.halted)
            self._rounds.end_round(self._round, self.stats, live)
        # Messages to halted receivers are dropped (counted above as sent).
        self._pending.extend(
            message
            for message in self._outbox
            if not self._contexts[message.receiver].halted
        )
        self._outbox = []
