"""Node-side API of the synchronous message-passing simulator.

A distributed algorithm is written by subclassing :class:`NodeAlgorithm`
and implementing two callbacks:

* :meth:`NodeAlgorithm.on_start` — called once before the first round;
* :meth:`NodeAlgorithm.on_round` — called every round with the messages
  delivered this round (those sent by neighbours in the previous round).

Both receive a :class:`Context`, the node's only handle on the world: its
id, its neighbour list, a private random stream, and ``send`` /
``broadcast`` / ``halt`` operations.  The context deliberately exposes *no*
global information (no graph object, no other nodes' state): any knowledge
an algorithm uses beyond this interface would be cheating the distributed
model.  The number of vertices ``n`` is exposed because both the LOCAL and
CONGEST models assume it is common knowledge (it parameterises the word
size).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Sequence

from ..errors import SimulationError
from .message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .network import SyncNetwork

__all__ = ["Context", "NodeAlgorithm"]


class Context:
    """A node's handle on the simulated network.

    Instances are created by :class:`~repro.distributed.network.SyncNetwork`
    — algorithms never construct one.
    """

    __slots__ = ("_network", "_node_id", "_neighbors", "_rng", "_halted")

    def __init__(
        self,
        network: "SyncNetwork",
        node_id: int,
        neighbors: tuple[int, ...],
        rng: random.Random,
    ) -> None:
        self._network = network
        self._node_id = node_id
        self._neighbors = neighbors
        self._rng = rng
        self._halted = False

    # ------------------------------------------------------------------
    # Local knowledge
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        """This node's identifier (``0..n-1``)."""
        return self._node_id

    @property
    def neighbors(self) -> tuple[int, ...]:
        """Sorted ids of this node's neighbours."""
        return self._neighbors

    @property
    def degree(self) -> int:
        """Number of neighbours."""
        return len(self._neighbors)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n`` (common knowledge in LOCAL/CONGEST)."""
        return self._network.graph.num_vertices

    @property
    def round_number(self) -> int:
        """Current round (0 during :meth:`NodeAlgorithm.on_start`)."""
        return self._network.current_round

    @property
    def rng(self) -> random.Random:
        """This node's private deterministic random stream."""
        return self._rng

    @property
    def halted(self) -> bool:
        """Whether this node has halted."""
        return self._halted

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def send(self, to: int, payload: Any) -> None:
        """Send ``payload`` to the neighbour ``to`` (delivered next round)."""
        if self._halted:
            raise SimulationError(f"node {self._node_id} sent after halting")
        if to not in self._neighbors:
            raise SimulationError(
                f"node {self._node_id} tried to send to non-neighbour {to}"
            )
        self._network._enqueue(
            Message.make(self._node_id, to, payload, self.round_number)
        )

    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every neighbour."""
        for to in self._neighbors:
            self.send(to, payload)

    def halt(self) -> None:
        """Stop participating: no further callbacks, sends or receives.

        Halting models a vertex leaving the computation — in the paper, a
        vertex that has been carved into a block stops relaying broadcasts
        of later phases.  Messages already in flight *to* a halted node are
        dropped (and counted as sent but not delivered).
        """
        self._halted = True


class NodeAlgorithm:
    """Base class for node-local distributed algorithms.

    Subclasses override :meth:`on_start` and :meth:`on_round`.  The default
    implementations do nothing, so passive relay-only nodes can override
    just one of them.
    """

    def on_start(self, ctx: Context) -> None:
        """Called once, before round 1.  Messages sent here arrive in round 1."""

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        """Called each round with the messages delivered this round.

        ``inbox`` is sorted by sender id, so processing order — and hence
        any state the algorithm builds — is deterministic.
        """
