"""Delivery schedules: the asynchronous adversary, seeded and bounded.

An asynchronous execution is a synchronous one plus an adversary that
chooses *when* each message arrives.  A :class:`Schedule` is that
adversary, constrained two ways so runs stay analysable:

* **bounded delay** — every message sent at virtual time ``s`` arrives
  within ``(s + 1, s + 1 + bound]``; ``bound = 0`` is the synchronous
  FIFO discipline.  The α-synchronizer (:mod:`.synchronizer`) still
  delivers the message in its logical pulse — the delay moves its
  *arrival order* (inbox position, per-node clock skew), never its
  logical round, which is exactly the guarantee a synchronizer buys;
* **seed determinism** — every choice is drawn from a stream derived
  from ``(seed, spec)``, so any schedule is replayable from the pair
  ``(seed, schedule_spec)`` alone (the golden/seeding contract of
  ``docs/async.md``).

Spec grammar (parsed by :func:`parse_schedule`)::

    fifo                    zero delay, arrival order = send order
    random:B                i.i.d. uniform delays in [0, B]
    random:B:geom           geometric delays (p = 1/2), capped at B
    latest:B                every message as late as possible (delay B),
                            ties delivered in *reverse* send order — the
                            maximal reordering adversary within the bound
    starve:B[:F]            a seeded fraction F (default 0.5) of directed
                            edges always delivers maximally late; the
                            rest are FIFO — per-edge starvation within
                            the bound

Schedules assign each message a ``(delay, order)`` pair; the engine
orders simultaneous arrivals by ``(arrival_time, order, seq)`` where
``seq`` is the global send sequence number, so delivery is a total
deterministic order.
"""

from __future__ import annotations

import random

from ..errors import ParameterError
from ..rng import derive_seed

__all__ = [
    "FifoSchedule",
    "LatestSchedule",
    "RandomDelaySchedule",
    "Schedule",
    "StarvationSchedule",
    "parse_schedule",
]


class Schedule:
    """Base class: assigns each message a delay within the bound.

    Attributes
    ----------
    spec:
        The canonical spec string (round-trips through
        :func:`parse_schedule`; recorded in telemetry and goldens).
    bound:
        The delay bound ``B`` — the largest extra virtual time the
        adversary may add on top of the unit transit time.  ``0`` means
        the schedule is FIFO and the engine's behaviour is bit-identical
        to :class:`~repro.distributed.network.SyncNetwork`.
    """

    spec = "fifo"
    bound = 0.0

    def assign(
        self, sender: int, receiver: int, pulse: int, seq: int
    ) -> tuple[float, int]:
        """``(delay, order)`` for one message, in global send order.

        Called exactly once per message, in the engine's deterministic
        flush order — stateful schedules (the random ones) consume their
        stream in that order, which is what makes replay exact.
        """
        raise NotImplementedError


class FifoSchedule(Schedule):
    """Zero delay: arrival order equals send order (the synchronous case)."""

    def assign(self, sender, receiver, pulse, seq):
        return 0.0, seq


class RandomDelaySchedule(Schedule):
    """I.i.d. bounded delays from a seeded stream.

    ``dist="uniform"`` draws from ``[0, bound]``; ``dist="geom"`` draws
    a geometric number of half-unit hops (p = 1/2) capped at the bound —
    most messages arrive nearly on time, a thin tail straggles.
    """

    def __init__(self, bound: float, dist: str, seed: int, spec: str) -> None:
        if bound <= 0:
            raise ParameterError(f"random schedule needs bound > 0, got {bound}")
        if dist not in ("uniform", "geom"):
            raise ParameterError(f"dist must be 'uniform' or 'geom', got {dist!r}")
        self.bound = float(bound)
        self.dist = dist
        self.spec = spec
        self._rng = random.Random(derive_seed(seed, "schedule", spec))

    def assign(self, sender, receiver, pulse, seq):
        if self.dist == "uniform":
            delay = self._rng.random() * self.bound
        else:
            hops = 0
            while hops < 2 * self.bound and self._rng.random() < 0.5:
                hops += 1
            delay = min(self.bound, 0.5 * hops)
        return delay, seq


class LatestSchedule(Schedule):
    """Everything as late as the bound allows, ties in reverse send order.

    The strongest reordering adversary available within a delay bound:
    each pulse's inbox arrives back-to-front relative to the synchronous
    order.  Deterministic without a seed (there is nothing to draw).
    """

    def __init__(self, bound: float, spec: str) -> None:
        if bound <= 0:
            raise ParameterError(f"latest schedule needs bound > 0, got {bound}")
        self.bound = float(bound)
        self.spec = spec

    def assign(self, sender, receiver, pulse, seq):
        return self.bound, -seq


class StarvationSchedule(Schedule):
    """A seeded set of directed edges is always maximally late.

    Each directed edge flips one seeded coin (derived from
    ``(seed, spec, sender, receiver)`` — stateless, so the starved set
    is independent of traffic order): with probability ``fraction`` the
    edge is *starved* and every message it carries arrives ``bound``
    late; otherwise the edge is FIFO.  Models one persistently slow
    link per-direction within the delay bound.
    """

    def __init__(self, bound: float, fraction: float, seed: int, spec: str) -> None:
        if bound <= 0:
            raise ParameterError(f"starve schedule needs bound > 0, got {bound}")
        if not 0.0 < fraction <= 1.0:
            raise ParameterError(f"starve fraction must be in (0, 1], got {fraction}")
        self.bound = float(bound)
        self.fraction = fraction
        self.spec = spec
        self._seed = seed
        self._starved: dict[tuple[int, int], bool] = {}

    def starved(self, sender: int, receiver: int) -> bool:
        """Whether the directed edge ``sender -> receiver`` is starved."""
        key = (sender, receiver)
        cached = self._starved.get(key)
        if cached is None:
            roll = random.Random(
                derive_seed(self._seed, "schedule", self.spec, sender, receiver)
            ).random()
            cached = self._starved[key] = roll < self.fraction
        return cached

    def assign(self, sender, receiver, pulse, seq):
        if self.starved(sender, receiver):
            return self.bound, seq
        return 0.0, seq


def _positive(token: str, spec: str) -> float:
    try:
        value = float(token)
    except ValueError:
        raise ParameterError(f"bad number {token!r} in schedule spec {spec!r}") from None
    return value


def parse_schedule(spec: "str | Schedule | None", seed: int) -> Schedule:
    """Parse a schedule spec string (see the module grammar).

    Passing an existing :class:`Schedule` returns it unchanged (callers
    that build one programmatically); ``None`` means FIFO.  The pair
    ``(seed, spec)`` fully determines the schedule's behaviour.
    """
    if spec is None:
        return FifoSchedule()
    if isinstance(spec, Schedule):
        return spec
    parts = spec.split(":")
    kind = parts[0]
    if kind == "fifo":
        if len(parts) != 1:
            raise ParameterError(f"fifo takes no arguments, got {spec!r}")
        return FifoSchedule()
    if kind == "random":
        if len(parts) not in (2, 3):
            raise ParameterError(f"expected random:<bound>[:<dist>], got {spec!r}")
        dist = parts[2] if len(parts) == 3 else "uniform"
        return RandomDelaySchedule(_positive(parts[1], spec), dist, seed, spec)
    if kind == "latest":
        if len(parts) != 2:
            raise ParameterError(f"expected latest:<bound>, got {spec!r}")
        return LatestSchedule(_positive(parts[1], spec), spec)
    if kind == "starve":
        if len(parts) not in (2, 3):
            raise ParameterError(f"expected starve:<bound>[:<fraction>], got {spec!r}")
        fraction = _positive(parts[2], spec) if len(parts) == 3 else 0.5
        return StarvationSchedule(_positive(parts[1], spec), fraction, seed, spec)
    raise ParameterError(
        f"unknown schedule {spec!r} (try fifo, random:B[:dist], latest:B, "
        f"starve:B[:frac])"
    )
