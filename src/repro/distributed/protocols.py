"""Reusable distributed primitives on the synchronous simulator.

Standard building blocks of LOCAL/CONGEST algorithmics, implemented as
:class:`~repro.distributed.node.NodeAlgorithm` subclasses with driver
helpers.  The decomposition protocols in :mod:`repro.core` inline their
own variants for phase control; these standalone versions are the
general-purpose substrate (and are exercised independently by the test
suite, which keeps the simulator honest).

* :class:`FloodNode` / :func:`run_flood` — broadcast a token from a root;
  every vertex learns it in ``ecc(root)`` rounds.
* :class:`BFSTreeNode` / :func:`run_bfs_tree` — parent/depth layers of a
  BFS tree rooted anywhere.
* :class:`ConvergecastSumNode` / :func:`run_convergecast_sum` — aggregate
  a per-vertex value up a BFS tree to the root (here: sum).
* :class:`LeaderElectionNode` / :func:`run_leader_election` — minimum-id
  election by iterative neighbourhood minima; stabilises in ``diameter``
  rounds per component.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from ..errors import SimulationError
from ..graphs.graph import Graph
from .message import Message
from .network import SyncNetwork
from .node import Context, NodeAlgorithm

__all__ = [
    "FloodNode",
    "BFSTreeNode",
    "ConvergecastSumNode",
    "LeaderElectionNode",
    "run_flood",
    "run_bfs_tree",
    "run_convergecast_sum",
    "run_leader_election",
]


class FloodNode(NodeAlgorithm):
    """Flood a token from ``root``; record the arrival round."""

    def __init__(self, vertex: int, root: int) -> None:
        self.vertex = vertex
        self.root = root
        self.token: Any = None
        self.heard_at: int | None = None

    def on_start(self, ctx: Context) -> None:
        if self.vertex == self.root:
            self.token = ("flood", self.root)
            self.heard_at = 0
            ctx.broadcast(self.token)

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        if self.heard_at is None and inbox:
            self.token = inbox[0].payload
            self.heard_at = ctx.round_number
            ctx.broadcast(self.token)


def run_flood(graph: Graph, root: int, max_rounds: int | None = None) -> dict[int, int]:
    """Flood from ``root``; return ``vertex -> arrival round`` (= distance)."""
    network = SyncNetwork(graph, lambda v: FloodNode(v, root))
    network.run_until_quiet(max_rounds or graph.num_vertices + 1)
    result: dict[int, int] = {}
    for v in graph.vertices():
        node = network.algorithm(v)
        assert isinstance(node, FloodNode)
        if node.heard_at is not None:
            result[v] = node.heard_at
    return result


class BFSTreeNode(NodeAlgorithm):
    """Adopt the first announcer as BFS parent; announce once."""

    def __init__(self, vertex: int, root: int) -> None:
        self.vertex = vertex
        self.root = root
        self.parent: int | None = None
        self.depth: int | None = None
        self.children: list[int] = []

    def on_start(self, ctx: Context) -> None:
        if self.vertex == self.root:
            self.parent = -1
            self.depth = 0
            ctx.broadcast(("bfs", 1))

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        for message in inbox:
            tag = message.payload[0]
            if tag == "bfs" and self.depth is None:
                self.parent = message.sender
                self.depth = message.payload[1]
                ctx.send(self.parent, ("child",))
                for neighbor in ctx.neighbors:
                    if neighbor != self.parent:
                        ctx.send(neighbor, ("bfs", self.depth + 1))
            elif tag == "child":
                self.children.append(message.sender)


def run_bfs_tree(
    graph: Graph, root: int, max_rounds: int | None = None
) -> tuple[dict[int, int], dict[int, int]]:
    """Build a BFS tree; return ``(parent_of, depth_of)`` for reached vertices."""
    network = SyncNetwork(graph, lambda v: BFSTreeNode(v, root))
    network.run_until_quiet(max_rounds or graph.num_vertices + 2)
    parents: dict[int, int] = {}
    depths: dict[int, int] = {}
    for v in graph.vertices():
        node = network.algorithm(v)
        assert isinstance(node, BFSTreeNode)
        if node.depth is not None:
            parents[v] = node.parent if node.parent is not None else -1
            depths[v] = node.depth
    return parents, depths


class ConvergecastSumNode(NodeAlgorithm):
    """Sum per-vertex values up a precomputed BFS tree.

    A vertex sends its subtree sum to its parent once all children have
    reported; leaves report immediately.  The root's ``total`` is the
    global sum.
    """

    def __init__(
        self, vertex: int, value: float, parent: int | None, children: Sequence[int]
    ) -> None:
        self.vertex = vertex
        self.value = value
        self.parent = parent
        self.children = list(children)
        self._pending = set(self.children)
        self.total = value
        self.reported = False

    def _maybe_report(self, ctx: Context) -> None:
        if not self._pending and not self.reported:
            self.reported = True
            if self.parent is not None and self.parent >= 0:
                ctx.send(self.parent, ("sum", self.total))
                ctx.halt()

    def on_start(self, ctx: Context) -> None:
        self._maybe_report(ctx)

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        for message in inbox:
            if message.payload[0] == "sum":
                self.total += message.payload[1]
                self._pending.discard(message.sender)
        self._maybe_report(ctx)


def run_convergecast_sum(
    graph: Graph, root: int, values: dict[int, float]
) -> float:
    """Sum ``values`` over ``root``'s component via BFS tree + convergecast."""
    parents, depths = run_bfs_tree(graph, root)
    children: dict[int, list[int]] = {v: [] for v in parents}
    for v, parent in parents.items():
        if parent >= 0:
            children[parent].append(v)
    network = SyncNetwork(
        graph,
        lambda v: ConvergecastSumNode(
            v,
            values.get(v, 0.0) if v in parents else 0.0,
            parents.get(v),
            children.get(v, ()),
        ),
    )
    network.run_until_quiet(2 * graph.num_vertices + 4)
    node = network.algorithm(root)
    assert isinstance(node, ConvergecastSumNode)
    if node._pending:
        raise SimulationError("convergecast did not complete")
    return node.total


class LeaderElectionNode(NodeAlgorithm):
    """Minimum-id election by repeated neighbourhood minima."""

    def __init__(self, vertex: int) -> None:
        self.vertex = vertex
        self.leader = vertex

    def on_start(self, ctx: Context) -> None:
        ctx.broadcast(("min", self.leader))

    def on_round(self, ctx: Context, inbox: Sequence[Message]) -> None:
        best = min(
            (message.payload[1] for message in inbox), default=self.leader
        )
        if best < self.leader:
            self.leader = best
            ctx.broadcast(("min", self.leader))


def run_leader_election(graph: Graph, max_rounds: int | None = None) -> dict[int, int]:
    """Elect the minimum id per component; return ``vertex -> leader``."""
    network = SyncNetwork(graph, lambda v: LeaderElectionNode(v))
    network.run_until_quiet(max_rounds or graph.num_vertices + 2)
    result = {}
    for v in graph.vertices():
        node = network.algorithm(v)
        assert isinstance(node, LeaderElectionNode)
        result[v] = node.leader
    return result
