"""Messages and bandwidth accounting for the simulated network.

The CONGEST model allows ``O(log n)`` bits per edge per round.  Following
the convention of the paper ("each message consists of O(1) words"), the
simulator measures message size in *words*: a word holds one integer of
magnitude ``poly(n)`` or one IEEE double.  :func:`payload_words` assigns a
word count to the Python payloads nodes exchange; composite payloads cost
the sum of their parts, so an ``("bcast", origin, radius, distance)`` tuple
costs 4 words.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

__all__ = ["Message", "payload_words"]

_CHARS_PER_WORD = 8


@dataclass(frozen=True)
class Message:
    """One message in flight: ``sender -> receiver``, sent during ``sent_round``.

    Messages sent during round ``t`` are delivered at the start of round
    ``t + 1`` (synchronous model).  ``words`` caches the bandwidth cost of
    ``payload``.
    """

    sender: int
    receiver: int
    payload: Any
    sent_round: int
    words: int

    @staticmethod
    def make(sender: int, receiver: int, payload: Any, sent_round: int) -> "Message":
        """Construct a message, computing its word cost."""
        return Message(sender, receiver, payload, sent_round, payload_words(payload))


def payload_words(payload: Any) -> int:
    """Word cost of a payload under the O(log n)-bits-per-word convention.

    * ``None`` and booleans: 1 word (a tag),
    * integers and floats: 1 word each,
    * strings: one word per 8 characters (tags like ``"join"`` cost 1),
    * tuples / lists / sets: the sum over elements,
    * dicts: the sum over keys and values.

    Anything else costs 1 word per 8 characters of its ``repr`` — a crude
    but monotone fallback that keeps exotic payloads from being free.
    """
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 1
    if isinstance(payload, str):
        return max(1, math.ceil(len(payload) / _CHARS_PER_WORD))
    if isinstance(payload, (tuple, list, frozenset, set)):
        return sum(payload_words(item) for item in payload) if payload else 1
    if isinstance(payload, dict):
        if not payload:
            return 1
        return sum(
            payload_words(key) + payload_words(value) for key, value in payload.items()
        )
    return max(1, math.ceil(len(repr(payload)) / _CHARS_PER_WORD))
