"""Run statistics collected by the simulator.

:class:`NetworkStats` is how the benchmark harness measures the costs the
paper reports: rounds of communication, number of messages, and bandwidth
per edge per round (the CONGEST budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NetworkStats"]


@dataclass
class NetworkStats:
    """Mutable accumulator of communication costs for one simulation run.

    Attributes
    ----------
    rounds:
        Number of rounds executed so far.
    messages_sent:
        Total messages enqueued (including ones dropped because the
        receiver had halted).
    messages_delivered:
        Messages actually handed to a receiver's ``on_round``.
    words_sent:
        Total bandwidth in words across all messages sent.
    max_words_per_edge_round:
        The largest number of words that crossed a single directed edge in
        a single round — the quantity the CONGEST model bounds.  The
        paper's top-two optimisation exists precisely to keep this O(1).
    """

    rounds: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0
    words_sent: int = 0
    max_words_per_edge_round: int = 0

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        """Combine two runs (e.g. per-phase stats into a total)."""
        return NetworkStats(
            rounds=self.rounds + other.rounds,
            messages_sent=self.messages_sent + other.messages_sent,
            messages_delivered=self.messages_delivered + other.messages_delivered,
            words_sent=self.words_sent + other.words_sent,
            max_words_per_edge_round=max(
                self.max_words_per_edge_round, other.max_words_per_edge_round
            ),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"rounds={self.rounds} messages={self.messages_sent} "
            f"words={self.words_sent} "
            f"max_words/edge/round={self.max_words_per_edge_round}"
        )
