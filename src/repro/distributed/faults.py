"""Seeded fault injection: node crash/recovery windows and message drops.

A :class:`FaultPlan` describes *what goes wrong* in an asynchronous run,
deterministically.  Crash windows are explicit (part of the spec);
message drops are seeded (derived from ``(seed, spec)``), so any faulty
execution is replayable from ``(seed, fault_spec)`` alone — the same
contract delivery schedules obey (:mod:`.schedule`).

Spec grammar (parsed by :meth:`FaultPlan.parse`) — ``;``-joined clauses::

    crash:V@S-E[,V@S-E...]   node V is down for pulses S <= p < E
                             (E omitted = down forever)
    drop:R                   each message is lost i.i.d. with rate R
                             (seeded; decided at send time)
    redeliver                messages addressed to a crashed node are
                             buffered and delivered at its first
                             post-recovery pulse instead of dropped

Fault semantics (pinned by ``tests/distributed/test_faults_golden.py``):

* a **crashed** node executes nothing — no ``on_round``, no sends — but
  keeps its state; on recovery it resumes where it stopped (its local
  phase clock lags the network, exactly as a real crash-recovery node's
  would).  Crashes are *not* halts: a crashed node still counts as live.
* messages **to** a crashed node are decided at their delivery pulse:
  dropped (default) or buffered for redelivery (``redeliver``).
  Redelivered messages arrive *before* that pulse's regular arrivals,
  in original send order — they are older.
* **drop** faults are decided at send time, after bandwidth accounting
  (a lost message still crossed the wire: it is counted as sent, never
  delivered — the same books as messages to halted receivers).

Every fault event is appended to :attr:`FaultPlan.log`, so two runs of
the same ``(seed, spec)`` can be compared event-for-event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ParameterError
from ..rng import derive_seed

__all__ = ["CrashWindow", "FaultPlan"]


@dataclass(frozen=True)
class CrashWindow:
    """Node ``node`` is crashed for pulses ``start <= p < end``."""

    node: int
    start: int
    end: int | None  # None = never recovers

    def covers(self, pulse: int) -> bool:
        return self.start <= pulse and (self.end is None or pulse < self.end)


class FaultPlan:
    """A parsed, seeded fault plan (see the module grammar).

    Instances are bound to one run: :meth:`reset` re-arms the drop
    stream and clears the event log, and the engine calls it once at
    construction — reusing a plan across networks replays identically.
    """

    def __init__(
        self,
        windows: tuple[CrashWindow, ...] = (),
        drop_rate: float = 0.0,
        redeliver: bool = False,
        spec: str = "",
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ParameterError(f"drop rate must be in [0, 1), got {drop_rate}")
        for window in windows:
            if window.start < 1:
                raise ParameterError(
                    f"crash windows start at pulse 1 (on_start cannot crash), "
                    f"got {window.start} for node {window.node}"
                )
            if window.end is not None and window.end <= window.start:
                raise ParameterError(
                    f"empty crash window {window.start}-{window.end} "
                    f"for node {window.node}"
                )
        self.windows = tuple(windows)
        self.drop_rate = drop_rate
        self.redeliver = redeliver
        self.spec = spec or self._canonical()
        self._rng: random.Random | None = None
        self.log: list[dict] = []

    def _canonical(self) -> str:
        clauses = []
        if self.windows:
            clauses.append(
                "crash:"
                + ",".join(
                    f"{w.node}@{w.start}-{'' if w.end is None else w.end}"
                    for w in self.windows
                )
            )
        if self.drop_rate:
            clauses.append(f"drop:{self.drop_rate}")
        if self.redeliver:
            clauses.append("redeliver")
        return ";".join(clauses)

    @classmethod
    def parse(cls, spec: "str | FaultPlan | None") -> "FaultPlan | None":
        """Parse a fault spec; ``None``/``""``/``"none"`` mean fault-free."""
        if spec is None or isinstance(spec, FaultPlan):
            return spec or None
        if spec in ("", "none"):
            return None
        windows: list[CrashWindow] = []
        drop_rate = 0.0
        redeliver = False
        for clause in spec.split(";"):
            if clause == "redeliver":
                redeliver = True
            elif clause.startswith("crash:"):
                for item in clause[len("crash:"):].split(","):
                    try:
                        node_part, span = item.split("@")
                        start_part, _, end_part = span.partition("-")
                        windows.append(
                            CrashWindow(
                                node=int(node_part),
                                start=int(start_part),
                                end=int(end_part) if end_part else None,
                            )
                        )
                    except ValueError:
                        raise ParameterError(
                            f"bad crash clause {item!r} in {spec!r} "
                            f"(expected V@S-E or V@S-)"
                        ) from None
            elif clause.startswith("drop:"):
                try:
                    drop_rate = float(clause[len("drop:"):])
                except ValueError:
                    raise ParameterError(f"bad drop rate in {spec!r}") from None
            else:
                raise ParameterError(
                    f"unknown fault clause {clause!r} in {spec!r} "
                    f"(try crash:V@S-E, drop:R, redeliver)"
                )
        return cls(tuple(windows), drop_rate, redeliver, spec)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def reset(self, seed: int) -> None:
        """Arm the plan for one run of ``seed`` (drop stream + log)."""
        self._rng = random.Random(derive_seed(seed, "faults", self.spec))
        self.log = []

    def crashed(self, node: int, pulse: int) -> bool:
        """Whether ``node`` is down at ``pulse``."""
        return any(w.node == node and w.covers(pulse) for w in self.windows)

    def drops(self, sender: int, receiver: int, pulse: int) -> bool:
        """Roll the seeded drop coin for one message (send order)."""
        if not self.drop_rate:
            return False
        assert self._rng is not None, "FaultPlan.reset() not called"
        if self._rng.random() < self.drop_rate:
            self.record("drop", pulse, sender=sender, receiver=receiver)
            return True
        return False

    def buffered_rounds(self, sent_round: int, pulse: int) -> int:
        """Rounds a redelivered message spent in a crash buffer.

        A message sent in round ``sent_round`` would have been delivered
        at ``sent_round + 1``; releasing it at the recovery ``pulse``
        cost the difference.  This is the ``fault`` attribution the
        causal log stamps on redelivery edges
        (:mod:`repro.telemetry.causality`) and the fault-window share
        of critical-path time (:mod:`repro.telemetry.critical`).
        """
        return max(pulse - sent_round - 1, 0)

    def record(self, kind: str, pulse: int, **details) -> None:
        """Append one event to the replay log."""
        self.log.append({"kind": kind, "pulse": pulse, **details})
