"""The α-synchronizer: synchronous algorithms on an asynchronous network.

Awerbuch's α-synchronizer lets an unmodified synchronous algorithm run
on an asynchronous network: every message is tagged with its sender's
pulse number, each node acknowledges what it receives, and a node
generates pulse ``p + 1`` only once it is *safe* — all of its pulse-``p``
messages have been delivered and all neighbours report the same.  The
logical round structure is therefore preserved exactly; what asynchrony
moves is *physical time*: when each node's pulse fires, and in what
order a pulse's messages arrive.

:class:`AlphaSynchronizer` is that safety rule, centralised: it keeps
one virtual clock per node and computes, for each pulse, when every node
becomes safe —

``ready(v, p) = max(clock(v) + 1,  max over relevant neighbours u of
clock(u) + 1,  latest arrival among v's pulse-p messages)``

— the first term is v's own pulse turnaround, the second models the
one-hop *safe* notices of the neighbours (a node cannot outrun its
neighbourhood by more than the message-delay bound), the last waits for
the actual traffic the delivery :class:`~repro.distributed.schedule
.Schedule` delayed.  Nodes execute each pulse in ``(ready, id)`` order,
so a schedule visibly reorders execution, and the spread of ready times
is the pulse's clock *skew*.  Crashed or halted neighbours are exempt
from the safety wait: the engine plays the role of a perfect failure
detector (a real α-synchronizer would need one bolted on, or it
deadlocks — see ``docs/async.md``).

Under the FIFO schedule every delay is zero, all ready times coincide at
``p``, and the execution order degenerates to ascending node id — which
is why a fault-free FIFO :class:`~repro.distributed.async_net
.AsyncNetwork` run is bit-identical to
:class:`~repro.distributed.network.SyncNetwork` (the equivalence the
``tests/distributed/test_schedule_properties.py`` harness pins).

:func:`build_network` is the driver-facing factory: EN/LS/MPX construct
their engine through it, so ``backend="async"`` is one keyword away from
the reference simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import ParameterError
from ..graphs.graph import Graph
from ..rng import DEFAULT_SEED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.causality import CausalLog
    from ..telemetry.rounds import RoundStream
    from .faults import FaultPlan
    from .node import NodeAlgorithm
    from .tracing import TraceRecorder

__all__ = ["AlphaSynchronizer", "build_network"]


class AlphaSynchronizer:
    """Per-node virtual clocks + the pulse safety rule (module docstring)."""

    __slots__ = ("graph", "clocks", "max_skew")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        #: Virtual time at which each node generated its latest pulse.
        self.clocks = [0.0] * graph.num_vertices
        #: Largest within-pulse spread of ready times seen so far.
        self.max_skew = 0.0

    def ready_times(
        self,
        pulse: int,
        executing: Sequence[int],
        arrivals: "dict[int, float]",
        waived: Callable[[int], bool],
    ) -> list[tuple[float, int]]:
        """``(ready, v)`` for every executing node, sorted (execution order).

        ``arrivals`` maps each node to the latest arrival time among its
        pulse-``pulse`` messages; ``waived(u)`` is true for neighbours
        whose safe notice is not awaited (halted or crashed — the
        perfect-failure-detector exemption).  Updates the clocks and the
        skew high-water mark as a side effect.
        """
        order: list[tuple[float, int]] = []
        clocks = self.clocks
        for v in executing:
            ready = clocks[v] + 1.0
            for u in self.graph.neighbors(v):
                if not waived(u):
                    safe = clocks[u] + 1.0
                    if safe > ready:
                        ready = safe
            arrived = arrivals.get(v)
            if arrived is not None and arrived > ready:
                ready = arrived
            order.append((ready, v))
        order.sort()
        for ready, v in order:
            clocks[v] = ready
        if order:
            skew = order[-1][0] - order[0][0]
            if skew > self.max_skew:
                self.max_skew = skew
        return order

    def clock(self, v: int) -> float:
        """Node ``v``'s virtual clock (time of its latest pulse)."""
        return self.clocks[v]


def build_network(
    graph: Graph,
    algorithms: "Sequence[NodeAlgorithm] | Callable[[int], NodeAlgorithm]",
    seed: int = DEFAULT_SEED,
    word_budget: "int | None" = None,
    tracer: "TraceRecorder | None" = None,
    rounds: "RoundStream | None" = None,
    causal: "CausalLog | None" = None,
    backend: str = "sync",
    delivery: str = "fifo",
    faults: "str | FaultPlan | None" = None,
):
    """Build the engine a driver asked for: ``"sync"`` or ``"async"``.

    ``delivery`` (a :mod:`.schedule` spec) and ``faults`` (a
    :mod:`.faults` spec) only make sense on the asynchronous engine;
    passing them with ``backend="sync"`` raises — silently ignoring an
    adversary would make a run look robust without testing anything.
    """
    if backend == "sync":
        if (delivery not in (None, "fifo")) or faults not in (None, "", "none"):
            raise ParameterError(
                "delivery schedules and fault plans need backend='async' "
                f"(got backend='sync' with delivery={delivery!r}, faults={faults!r})"
            )
        from .network import SyncNetwork

        return SyncNetwork(
            graph, algorithms, seed=seed, word_budget=word_budget,
            tracer=tracer, rounds=rounds, causal=causal,
        )
    if backend == "async":
        from .async_net import AsyncNetwork

        return AsyncNetwork(
            graph, algorithms, seed=seed, word_budget=word_budget,
            tracer=tracer, rounds=rounds, causal=causal,
            delivery=delivery, faults=faults,
        )
    raise ParameterError(f"backend must be 'sync' or 'async', got {backend!r}")
