"""Distributed runtime substrate: a synchronous LOCAL/CONGEST simulator.

The paper's model (§1.1): each vertex hosts a processor, processors
communicate over the graph's edges in synchronous rounds, and running time
is the number of rounds.  This package provides that model in executable
form:

* :class:`~repro.distributed.node.NodeAlgorithm` /
  :class:`~repro.distributed.node.Context` — the node-side programming API;
* :class:`~repro.distributed.network.SyncNetwork` — the deterministic round
  engine with message delivery, halting, and bandwidth accounting;
* :class:`~repro.distributed.metrics.NetworkStats` — rounds / messages /
  words-per-edge-per-round measurements;
* :func:`~repro.distributed.message.payload_words` — the O(1)-words
  CONGEST cost model;
* :class:`~repro.distributed.async_net.AsyncNetwork` + the α-synchronizer
  (:mod:`~repro.distributed.synchronizer`) — the same node contract under
  asynchronous delivery (:mod:`~repro.distributed.schedule`) and seeded
  fault injection (:mod:`~repro.distributed.faults`); see ``docs/async.md``.
"""

from .async_net import AsyncNetwork, AsyncStats, live_networks
from .faults import CrashWindow, FaultPlan
from .message import Message, payload_words
from .metrics import NetworkStats
from .network import SyncNetwork
from .node import Context, NodeAlgorithm
from .schedule import Schedule, parse_schedule
from .synchronizer import AlphaSynchronizer, build_network
from .protocols import (
    BFSTreeNode,
    ConvergecastSumNode,
    FloodNode,
    LeaderElectionNode,
    run_bfs_tree,
    run_convergecast_sum,
    run_flood,
    run_leader_election,
)
from .tracing import TraceEvent, TraceRecorder

__all__ = [
    "AlphaSynchronizer",
    "AsyncNetwork",
    "AsyncStats",
    "BFSTreeNode",
    "Context",
    "ConvergecastSumNode",
    "CrashWindow",
    "FaultPlan",
    "FloodNode",
    "LeaderElectionNode",
    "Message",
    "NetworkStats",
    "NodeAlgorithm",
    "Schedule",
    "SyncNetwork",
    "TraceEvent",
    "TraceRecorder",
    "build_network",
    "live_networks",
    "parse_schedule",
    "payload_words",
    "run_bfs_tree",
    "run_convergecast_sum",
    "run_flood",
    "run_leader_election",
]
