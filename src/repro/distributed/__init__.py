"""Distributed runtime substrate: a synchronous LOCAL/CONGEST simulator.

The paper's model (§1.1): each vertex hosts a processor, processors
communicate over the graph's edges in synchronous rounds, and running time
is the number of rounds.  This package provides that model in executable
form:

* :class:`~repro.distributed.node.NodeAlgorithm` /
  :class:`~repro.distributed.node.Context` — the node-side programming API;
* :class:`~repro.distributed.network.SyncNetwork` — the deterministic round
  engine with message delivery, halting, and bandwidth accounting;
* :class:`~repro.distributed.metrics.NetworkStats` — rounds / messages /
  words-per-edge-per-round measurements;
* :func:`~repro.distributed.message.payload_words` — the O(1)-words
  CONGEST cost model.
"""

from .message import Message, payload_words
from .metrics import NetworkStats
from .network import SyncNetwork
from .node import Context, NodeAlgorithm
from .protocols import (
    BFSTreeNode,
    ConvergecastSumNode,
    FloodNode,
    LeaderElectionNode,
    run_bfs_tree,
    run_convergecast_sum,
    run_flood,
    run_leader_election,
)
from .tracing import TraceEvent, TraceRecorder

__all__ = [
    "BFSTreeNode",
    "Context",
    "ConvergecastSumNode",
    "FloodNode",
    "LeaderElectionNode",
    "Message",
    "NetworkStats",
    "NodeAlgorithm",
    "SyncNetwork",
    "TraceEvent",
    "TraceRecorder",
    "payload_words",
    "run_bfs_tree",
    "run_convergecast_sum",
    "run_flood",
    "run_leader_election",
]
