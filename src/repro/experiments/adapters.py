"""Algorithm adapters: turn a :class:`TrialSpec` into one flat record.

Each adapter builds the trial's graph, runs one algorithm (or a paired
comparison), and returns a flat, JSON-serialisable dict of measurements.
Adapters are **pure functions of the trial spec** — no wall-clock, no
global state — which is what makes records cacheable and makes parallel
execution bit-identical to serial execution.

The :data:`ALGORITHMS` table is the extension point: registering a new
name here makes it available to every scenario and to the ``bench`` CLI.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict

from ..applications import run_mis
from ..applications.verify import is_maximal_independent_set
from ..baselines import distributed_ls, distributed_mpx, linial_saks
from ..core import elkin_neiman, high_radius, staged, theorem1_bounds
from ..core.distributed_en import decompose_distributed
from ..errors import ParameterError
from ..graphs import (
    ActiveSet,
    Graph,
    bfs_distances,
    bfs_distances_bounded,
    connected_components,
    multi_source_bfs,
    parse_graph_spec,
)
from ..oracle import build_oracle, estimates_checksum, validate_sample
from ..rng import stream
from ..telemetry import Telemetry, critical_path
from .spec import TrialSpec

__all__ = ["ALGORITHMS", "Adapter", "algorithm_names", "run_trial"]

Record = Dict[str, Any]
Adapter = Callable[[Graph, TrialSpec], Record]


def _json_safe(value: float) -> float | None:
    """Map non-finite diameters to ``None`` so records survive strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _quality_fields(decomposition) -> Record:
    strong = decomposition.strong_diameters()
    disconnected = sum(1 for d in strong if math.isinf(d))
    return {
        "clusters": decomposition.num_clusters,
        "colors": decomposition.num_colors,
        "strong_diameter": _json_safe(max(strong, default=0.0)),
        "weak_diameter": max(decomposition.weak_diameters(), default=0.0),
        "disconnected": disconnected,
    }


def _trace_fields(trace) -> Record:
    return {
        "phases": trace.total_phases,
        "nominal_phases": trace.nominal_phases,
        "in_budget": trace.exhausted_within_nominal,
        "truncation_events": len(trace.truncation_events),
    }


def _default_k(graph: Graph, params: Record) -> float:
    k = params.get("k")
    if k is None:
        k = max(2, math.ceil(math.log(max(graph.num_vertices, 2))))
    return k


def _cluster_checksum(decomposition) -> int:
    """Deterministic checksum of a cluster assignment, pinning cached
    records to the exact decomposition across backends and adapters."""
    return (
        sum(
            (v + 1) * (cluster + 3)
            for v, cluster in decomposition.cluster_index_map().items()
        )
        % 1_000_003
    )


def _adapt_elkin_neiman(graph: Graph, trial: TrialSpec) -> Record:
    """Theorem 1 — centralized strong-diameter decomposition."""
    params = trial.param_dict()
    k = _default_k(graph, params)
    c = params.get("c", 4.0)
    decomposition, trace = elkin_neiman.decompose(graph, k=k, c=c, seed=trial.seed)
    decomposition.validate()
    bounds = theorem1_bounds(graph.num_vertices, k, c)
    record: Record = {"n": graph.num_vertices, "m": graph.num_edges, "k": k, "c": c}
    record.update(_quality_fields(decomposition))
    record.update(_trace_fields(trace))
    record["diameter_bound"] = bounds.diameter
    record["color_bound"] = round(bounds.colors, 2)
    return record


def _adapt_staged(graph: Graph, trial: TrialSpec) -> Record:
    """Theorem 2 — the staged ``O(log n)``-colour variant."""
    params = trial.param_dict()
    k = _default_k(graph, params)
    c = max(params.get("c", 6.0), 6.0)
    decomposition, trace = staged.decompose(graph, k=k, c=c, seed=trial.seed)
    decomposition.validate()
    record: Record = {"n": graph.num_vertices, "m": graph.num_edges, "k": k, "c": c}
    record.update(_quality_fields(decomposition))
    record.update(_trace_fields(trace))
    return record


def _adapt_high_radius(graph: Graph, trial: TrialSpec) -> Record:
    """Theorem 3 — few colours, larger radius."""
    params = trial.param_dict()
    lam = int(params.get("lam", 3))
    c = params.get("c", 4.0)
    decomposition, trace = high_radius.decompose(graph, lam=lam, c=c, seed=trial.seed)
    decomposition.validate()
    record: Record = {"n": graph.num_vertices, "m": graph.num_edges, "lam": lam, "c": c}
    record.update(_quality_fields(decomposition))
    record.update(_trace_fields(trace))
    record["within_lambda"] = decomposition.num_colors <= lam
    return record


def _adapt_linial_saks(graph: Graph, trial: TrialSpec) -> Record:
    """LS93 baseline — weak diameter, clusters may disconnect."""
    params = trial.param_dict()
    k = int(_default_k(graph, params))
    decomposition, _ = linial_saks.decompose(graph, k=k, seed=trial.seed)
    record: Record = {"n": graph.num_vertices, "m": graph.num_edges, "k": k}
    record.update(_quality_fields(decomposition))
    record["weak_bound"] = 2 * k - 2
    return record


def _adapt_congest(graph: Graph, trial: TrialSpec) -> Record:
    """Distributed EN protocol vs the centralized reference on one graph.

    The paper's E12 story: measured CONGEST rounds against ``ln²(cn)``,
    plus an exact cross-validation that the message-passing protocol
    reproduces the centralized decomposition bit-for-bit.
    """
    params = trial.param_dict()
    k = _default_k(graph, params)
    c = params.get("c", 4.0)
    result = decompose_distributed(graph, k=k, c=c, seed=trial.seed)
    central, _ = elkin_neiman.decompose(graph, k=k, c=c, seed=trial.seed)
    log2 = math.log(c * graph.num_vertices) ** 2
    return {
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "k": k,
        "c": c,
        "rounds": result.total_rounds,
        "ln2_cn": round(log2, 2),
        "rounds_per_ln2": round(result.total_rounds / log2, 4),
        "phases": result.phases,
        "colors": result.decomposition.num_colors,
        "messages": result.stats.messages_sent,
        "matches_centralized": (
            central.cluster_index_map() == result.decomposition.cluster_index_map()
        ),
    }


def _adapt_survival(graph: Graph, trial: TrialSpec) -> Record:
    """Claim 6 / Corollary 7 — the per-phase survivor curve of one run."""
    params = trial.param_dict()
    k = _default_k(graph, params)
    c = params.get("c", 4.0)
    _, trace = elkin_neiman.decompose(graph, k=k, c=c, seed=trial.seed)
    return {
        "n": graph.num_vertices,
        "k": k,
        "c": c,
        "phases": trace.total_phases,
        "nominal_phases": trace.nominal_phases,
        "in_budget": trace.exhausted_within_nominal,
        "survivors": list(trace.survivors),
    }


def _adapt_strong_vs_weak(graph: Graph, trial: TrialSpec) -> Record:
    """EN16 vs LS93 on identical inputs, plus MIS relay overhead.

    The paper's §1.1 motivation quantified: LS clusters can disconnect
    (strong diameter ∞), forcing applications into the weak relay mode
    whose non-member message load is pure overhead; EN runs strong-mode
    with zero relays.
    """
    params = trial.param_dict()
    k = int(_default_k(graph, params))
    en, _ = elkin_neiman.decompose(graph, k=k, seed=trial.seed)
    ls, _ = linial_saks.decompose(graph, k=k, seed=trial.seed)
    en_mis = run_mis(graph, en, relay_mode="strong", seed=trial.seed)
    ls_mis = run_mis(graph, ls, relay_mode="weak", seed=trial.seed)
    return {
        "n": graph.num_vertices,
        "k": k,
        "en_disconnected": len(en.disconnected_clusters()),
        "ls_disconnected": len(ls.disconnected_clusters()),
        "en_strong_diameter": _json_safe(en.max_strong_diameter()),
        "ls_strong_diameter": _json_safe(ls.max_strong_diameter()),
        "weak_bound": 2 * k - 2,
        "en_relays": en_mis.app.relay_messages_nonmember,
        "ls_relays": ls_mis.app.relay_messages_nonmember,
        "en_mis_verified": is_maximal_independent_set(graph, en_mis.independent_set),
        "ls_mis_verified": is_maximal_independent_set(graph, ls_mis.independent_set),
    }


def _adapt_kernel(graph: Graph, trial: TrialSpec) -> Record:
    """Traversal-kernel workload: BFS-dominated, structurally checksummed.

    Exercises every traversal primitive the CSR kernel serves — full BFS,
    multi-source BFS, bounded BFS over a shrinking active set, connected
    components — and records *structural invariants* (reach, depth,
    distance checksums) rather than wall-clock times or environment
    facts, so records are pure functions of the trial spec and
    cache/parallelise byte-identically.  (The active kernel backend is
    deliberately absent: cached records outlive backend switches.)
    Wall-clock speedups over the legacy kernel are measured by
    ``benchmarks/bench_kernel.py``.
    """
    params = trial.param_dict()
    n = graph.num_vertices
    if n == 0:
        return {"n": 0, "m": 0}
    full = bfs_distances(graph, 0)
    components = connected_components(graph)
    num_sources = int(params.get("sources", 16))
    step = max(1, n // max(num_sources, 1))
    near = multi_source_bfs(graph, range(0, n, step))
    # Shrinking-graph simulation: keep the half-depth ball around the
    # source active and rerun a bounded broadcast over it (the carving
    # access pattern: bounded BFS over a strict subset of the graph).
    depth = max(full.values(), default=0)
    active = ActiveSet.from_iterable(
        n, (v for v, d in full.items() if 2 * d <= depth)
    )
    start = active.first()
    bounded = (
        bfs_distances_bounded(graph, start, radius=int(params.get("radius", 4)), active=active)
        if start is not None
        else {}
    )
    return {
        "n": n,
        "m": graph.num_edges,
        "reached": len(full),
        "depth": depth,
        "components": len(components),
        "multi_sources": len(range(0, n, step)),
        "multi_depth": max(near.values(), default=0),
        "active_size": len(active),
        "bounded_reached": len(bounded),
        "checksum": sum(full.values()) % 1_000_003,
    }


def _adapt_engine(graph: Graph, trial: TrialSpec) -> Record:
    """Batch round-engine workload: distributed EN on ``backend="batch"``.

    Records the protocol's cost profile (rounds, messages, words, peak
    per-edge bandwidth) plus a deterministic checksum of the resulting
    decomposition, so cached records pin the engine's behaviour exactly.
    With ``compare="sync"`` the same trial also runs on the reference
    :class:`~repro.distributed.network.SyncNetwork` backend and records
    whether outputs and stats match bit-for-bit (used at the small
    points of the ``engine-scaling`` scenario; the batch leg alone runs
    at the scale points).  Wall-clock racing lives in
    ``benchmarks/bench_engine.py``.
    """
    params = trial.param_dict()
    k = _default_k(graph, params)
    c = params.get("c", 4.0)
    mode = params.get("mode", "toptwo")
    result = decompose_distributed(
        graph, k=k, c=c, seed=trial.seed, mode=mode, backend="batch"
    )
    cluster_map = result.decomposition.cluster_index_map()
    checksum = _cluster_checksum(result.decomposition)
    record: Record = {
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "k": k,
        "mode": mode,
        "phases": result.phases,
        "rounds": result.total_rounds,
        "colors": result.decomposition.num_colors,
        "clusters": result.decomposition.num_clusters,
        "messages": result.stats.messages_sent,
        "words": result.stats.words_sent,
        "max_words_edge_round": result.stats.max_words_per_edge_round,
        "checksum": checksum,
    }
    if params.get("compare") == "sync":
        reference = decompose_distributed(
            graph, k=k, c=c, seed=trial.seed, mode=mode, backend="sync"
        )
        record["matches_sync"] = (
            reference.decomposition.cluster_index_map() == cluster_map
            and reference.stats == result.stats
            and reference.rounds_per_phase == result.rounds_per_phase
        )
    return record


def _adapt_oracle(graph: Graph, trial: TrialSpec) -> Record:
    """Distance-oracle workload: build the hierarchy, serve a query batch.

    Builds the multi-scale cover oracle, answers a seeded batch of
    random pairs and validates the first ``check`` answers against exact
    BFS (lower bound, and the advertised stretch bound).  Records are
    pure functions of the trial spec: query pairs come from a derived
    stream, estimates are bit-identical on both query backends by
    contract, and the checksum pins them — so a cached numpy record
    validates a later ``REPRO_KERNEL=py`` run and vice versa.
    Wall-clock throughput lives in ``benchmarks/bench_oracle.py``.
    """
    params = trial.param_dict()
    k = params.get("k")
    c = params.get("c", 4.0)
    budget = params.get("budget", 8.0)
    queries = int(params.get("queries", 2048))
    check = int(params.get("check", 64))
    oracle = build_oracle(
        graph, k=k, c=c, seed=trial.seed, overlap_budget=budget
    )
    n = graph.num_vertices
    rng = stream(trial.seed, "oracle", "queries")
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(queries)] if n else []
    estimates = oracle.distances(pairs)
    validation = validate_sample(oracle, pairs, estimates, check)
    return {
        "n": n,
        "m": graph.num_edges,
        "scales": oracle.num_scales,
        "skipped": len(oracle.skipped_radii),
        "clusters": sum(s.num_clusters for s in oracle.scales),
        "entries": sum(s.entries for s in oracle.scales),
        "max_overlap": max((s.max_overlap for s in oracle.scales), default=0),
        "stretch_bound": round(oracle.stretch_bound, 2),
        "queries": len(pairs),
        "unreachable": sum(1 for e in estimates if e == -1),
        "checked": validation["checked"],
        "stretch_ok": validation["violations"] == 0,
        "worst_stretch": validation["worst_stretch"],
        "checksum": estimates_checksum(estimates),
    }


def _adapt_shootout(graph: Graph, trial: TrialSpec) -> Record:
    """Protocol race leg: one of EN/LS/MPX on one backend, one graph.

    The ``shootout`` campaign's unit of work.  ``algo`` selects the
    distributed driver (``en``/``ls``/``mpx``) and ``backend`` the
    execution engine (``sync`` reference simulator or the columnar
    ``batch`` engine — bit-identical by contract, so the record schema
    is backend-independent and the perf gate can diff them).  Recorded
    metrics are the CONGEST model's own cost currency — rounds,
    messages, words, peak per-edge bandwidth — plus decomposition shape
    and a deterministic checksum of the cluster assignment; wall-clock
    lives in ``benchmarks/bench_engine.py`` and the artifact envelope,
    never in cached records.
    """
    params = trial.param_dict()
    algo = params.get("algo", "en")
    backend = params.get("backend", "batch")
    if algo == "en":
        result = decompose_distributed(
            graph,
            k=_default_k(graph, params),
            c=params.get("c", 4.0),
            seed=trial.seed,
            mode=params.get("mode", "toptwo"),
            backend=backend,
        )
        decomposition = result.decomposition
        rounds, phases, stats = result.total_rounds, result.phases, result.stats
    elif algo == "ls":
        result = distributed_ls.decompose_distributed(
            graph,
            k=int(_default_k(graph, params)),
            seed=trial.seed,
            backend=backend,
        )
        decomposition = result.decomposition
        rounds, phases, stats = result.total_rounds, result.phases, result.stats
    elif algo == "mpx":
        result = distributed_mpx.partition_distributed(
            graph,
            beta=params.get("beta", 0.3),
            seed=trial.seed,
            mode=params.get("mode", "topone"),
            backend=backend,
        )
        decomposition = result.decomposition
        rounds, phases, stats = result.rounds, 1, result.stats
    else:
        raise ParameterError(
            f"shootout algo must be 'en', 'ls' or 'mpx', got {algo!r}"
        )
    record: Record = {
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "algo": algo,
        "backend": backend,
        "rounds": rounds,
        "phases": phases,
        "colors": decomposition.num_colors,
        "clusters": decomposition.num_clusters,
        "messages": stats.messages_sent,
        "words": stats.words_sent,
        "max_words_edge_round": stats.max_words_per_edge_round,
        "checksum": _cluster_checksum(decomposition),
    }
    if algo == "mpx":
        record["cut_fraction"] = round(result.cut_fraction, 4)
    return record


#: Adversary counters the async engine annotates on its run span, lifted
#: verbatim into robustness records (zero on fault-free FIFO runs).
_ASYNC_COUNTER_KEYS = (
    "delayed",
    "reordered",
    "dropped",
    "redelivered",
    "crashes",
    "recoveries",
    "max_skew",
)


def _adapt_robustness(graph: Graph, trial: TrialSpec) -> Record:
    """Adversarial-execution leg: one protocol on ``backend="async"``.

    Runs one of EN/LS/MPX on the α-synchronized asynchronous engine
    under a ``delivery`` schedule and optional ``faults`` plan, next to
    the synchronous reference on the *same* seed, and records whether
    the decompositions agree (``matches_sync``) together with the
    engine's adversary counters.  Fault-free runs must always match —
    delay-only schedules exercise the order-obliviousness the
    α-synchronizer guarantees — while faulted runs measure how far the
    output drifts.  ``faults="none"`` is the explicit no-faults
    sentinel so the parameter grids stay JSON-flat.  Records are pure
    functions of the trial spec: the async engine is replay-
    deterministic from ``(seed, delivery, faults)`` by contract
    (``docs/async.md``), and the local telemetry object exists only to
    read the deterministic counters off the run span.
    """
    params = trial.param_dict()
    algo = params.get("algo", "en")
    delivery = str(params.get("delivery", "fifo"))
    faults = str(params.get("faults", "none"))
    fault_arg = None if faults in ("", "none") else faults
    tel = Telemetry()
    if algo == "en":
        kwargs = dict(
            k=_default_k(graph, params),
            c=params.get("c", 4.0),
            seed=trial.seed,
            mode=params.get("mode", "toptwo"),
        )
        run = decompose_distributed(
            graph, backend="async", delivery=delivery, faults=fault_arg,
            telemetry=tel, **kwargs,
        )
        ref = decompose_distributed(graph, **kwargs)
        rounds, phases = run.total_rounds, run.phases
    elif algo == "ls":
        kwargs = dict(k=int(_default_k(graph, params)), seed=trial.seed)
        run = distributed_ls.decompose_distributed(
            graph, backend="async", delivery=delivery, faults=fault_arg,
            telemetry=tel, **kwargs,
        )
        ref = distributed_ls.decompose_distributed(graph, **kwargs)
        rounds, phases = run.total_rounds, run.phases
    elif algo == "mpx":
        kwargs = dict(
            beta=params.get("beta", 0.3),
            seed=trial.seed,
            mode=params.get("mode", "topone"),
        )
        # The one-shot competition needs every vertex to decide, so
        # robustness grids give MPX drop faults only (see the driver
        # docstring); crash plans would trip the assignment assertion.
        run = distributed_mpx.partition_distributed(
            graph, backend="async", delivery=delivery, faults=fault_arg,
            telemetry=tel, **kwargs,
        )
        ref = distributed_mpx.partition_distributed(graph, **kwargs)
        rounds, phases = run.rounds, 1
    else:
        raise ParameterError(
            f"robustness algo must be 'en', 'ls' or 'mpx', got {algo!r}"
        )
    attrs = next(s for s in tel.spans if s["depth"] == 0)["attrs"]
    decomposition = run.decomposition
    record: Record = {
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "algo": algo,
        "delivery": delivery,
        "faults": faults,
        "rounds": rounds,
        "phases": phases,
        "colors": decomposition.num_colors,
        "clusters": decomposition.num_clusters,
        "disconnected": sum(
            1 for d in decomposition.strong_diameters() if math.isinf(d)
        ),
        "checksum": _cluster_checksum(decomposition),
        "matches_sync": (
            decomposition.cluster_index_map()
            == ref.decomposition.cluster_index_map()
        ),
    }
    for key in _ASYNC_COUNTER_KEYS:
        record[key] = attrs.get(key, 0)
    # Critical-path figures off the run's causal log (the local
    # telemetry records it alongside the counters): on fault-free FIFO
    # legs the path length equals `rounds` and the drift is zero — the
    # invariant the CI smoke pins — while adversarial legs report how
    # much schedule inflation the binding dependency chain absorbed.
    path = critical_path(tel.causal)
    record["critical_path_rounds"] = path["rounds"]
    record["critical_path_time"] = path["time"]
    record["critical_path_drift"] = path["drift"]
    return record


def _adapt_serving(graph: Graph, trial: TrialSpec) -> Record:
    """Serving-daemon loopback leg: one daemon, one sequential client.

    Builds the oracle, hosts it in an in-process :class:`ServerThread`
    (``workers=0`` — the deterministic in-loop answer path) and drives
    it with a single sequential client, so every counter the record
    carries is a pure function of the trial spec: ``queries`` pairs at
    ``max_batch`` yield an exact batch count, the ``repeat`` replay hits
    the cache (or misses it, capacity permitting) identically every
    run, and the served answers are asserted row-identical to direct
    ``oracle.query`` calls (``matches_direct`` / ``routes_match``).
    Latency and saturation throughput live in
    ``benchmarks/bench_serving.py``, never in cached records.
    """
    from ..serving import ServeClient, ServerConfig, ServerThread

    params = trial.param_dict()
    k = params.get("k")
    c = params.get("c", 4.0)
    budget = params.get("budget", 8.0)
    queries = int(params.get("queries", 256))
    max_batch = int(params.get("max_batch", 32))
    cache = int(params.get("cache", 256))
    repeat = int(params.get("repeat", min(64, queries)))
    oracle = build_oracle(
        graph, k=k, c=c, seed=trial.seed, overlap_budget=budget
    )
    n = graph.num_vertices
    rng = stream(trial.seed, "serving", "queries")
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(queries)] if n else []
    direct_d = oracle.distances(pairs)
    direct_r = oracle.routes(pairs[:repeat])
    config = ServerConfig(
        max_batch=max_batch, max_wait_us=200, cache_size=cache, workers=0
    )
    with ServerThread(oracle, config) as server:
        host, port = server.address
        with ServeClient(host, port) as client:
            served_d = client.distances(pairs)
            replay_d = client.distances(pairs[:repeat])
            served_r = client.routes(pairs[:repeat])
            stats = client.stats()
            client.shutdown()
    return {
        "n": n,
        "m": graph.num_edges,
        "scales": oracle.num_scales,
        "stretch_bound": round(oracle.stretch_bound, 2),
        "queries": len(pairs),
        "max_batch": max_batch,
        "cache": cache,
        "matches_direct": served_d == direct_d,
        "repeat_matches": replay_d == direct_d[:repeat],
        "routes_match": served_r == direct_r,
        "requests": stats["requests"],
        "batches": stats["batches"],
        "batched_pairs": stats["batched_pairs"],
        "largest_batch": stats["largest_batch"],
        "cache_hits": stats["cache"]["hits"],
        "cache_misses": stats["cache"]["misses"],
        "cache_evictions": stats["cache"]["evictions"],
        "errors": stats["errors"],
        "checksum": estimates_checksum(served_d),
    }


#: Algorithm name → adapter.  Registering here exposes the algorithm to
#: every scenario and to ``python -m repro bench``.
ALGORITHMS: Dict[str, Adapter] = {
    "en": _adapt_elkin_neiman,
    "staged": _adapt_staged,
    "high-radius": _adapt_high_radius,
    "linial-saks": _adapt_linial_saks,
    "congest": _adapt_congest,
    "survival": _adapt_survival,
    "strong-vs-weak": _adapt_strong_vs_weak,
    "kernel": _adapt_kernel,
    "engine": _adapt_engine,
    "oracle": _adapt_oracle,
    "shootout": _adapt_shootout,
    "robustness": _adapt_robustness,
    "serving": _adapt_serving,
}


def algorithm_names() -> list[str]:
    """Registered adapter names, sorted."""
    return sorted(ALGORITHMS)


def run_trial(trial: TrialSpec) -> Record:
    """Execute one trial: build its graph, run its adapter, return the record."""
    try:
        adapter = ALGORITHMS[trial.algorithm]
    except KeyError:
        raise ParameterError(
            f"unknown algorithm {trial.algorithm!r} (try one of {algorithm_names()})"
        ) from None
    graph = parse_graph_spec(trial.graph, seed=trial.graph_seed)
    return adapter(graph, trial)
