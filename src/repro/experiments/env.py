"""Environment provenance for benchmark artifacts.

``bench --json`` files and the ``BENCH_*.json`` perf-trajectory files
are compared across PRs and across machines; a result without its
environment is not comparable.  :func:`environment_block` captures the
facts that actually move the numbers — interpreter, numpy presence and
version, the active kernel backend, the git revision — as one flat
JSON-safe dict.  Everything degrades to ``None`` rather than raising, so
artifacts can be produced from installed wheels and bare checkouts
alike.

Note the deliberate split: *trial records* (the content-addressed cache)
stay pure functions of the trial spec and never include this block —
cached records outlive backend switches.  The environment is stamped on
the artifact envelope only.
"""

from __future__ import annotations

import pathlib
import platform
import subprocess

from ..graphs._kernel import backend_name

__all__ = ["environment_block", "git_revision"]


def git_revision() -> str | None:
    """The checkout's short commit SHA, or ``None`` outside a checkout.

    Guards against false provenance: the SHA is reported only when this
    module actually lives inside the repository git resolves (an
    installed copy sitting in a venv *inside some other project's repo*
    would otherwise stamp that project's commit on our artifacts).
    """
    here = pathlib.Path(__file__).resolve()
    try:
        toplevel = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=here.parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=here.parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if toplevel.returncode != 0 or result.returncode != 0:
        return None
    root = pathlib.Path(toplevel.stdout.strip())
    if (root / "src" / "repro" / "experiments" / "env.py").resolve() != here:
        return None
    sha = result.stdout.strip()
    return sha or None


def environment_block() -> dict:
    """The flat provenance dict stamped on benchmark JSON artifacts."""
    try:
        import numpy

        numpy_version: str | None = numpy.__version__
    except ImportError:  # pragma: no cover - stdlib-only installs
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "numpy": numpy_version,
        "kernel_backend": backend_name(),
        "git_sha": git_revision(),
    }
