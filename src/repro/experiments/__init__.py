"""Experiment orchestration runtime: specs, runner, cache, scenarios.

The paper's claims are statistical, so every benchmark is "run many
seeded trials, aggregate".  This package is the shared machinery behind
that sentence:

* :mod:`~repro.experiments.spec` — frozen :class:`TrialSpec` /
  :class:`ExperimentSpec` with deterministic per-trial seed derivation
  and stable content hashes;
* :mod:`~repro.experiments.adapters` — algorithm name → record function
  (:data:`ALGORITHMS` is the extension point);
* :mod:`~repro.experiments.runner` — serial or multiprocessing trial
  execution with per-trial failure capture;
* :mod:`~repro.experiments.cache` — content-addressed on-disk JSON
  cache so re-runs skip computed trials;
* :mod:`~repro.experiments.registry` — named scenarios
  (``er-sweep``, ``strong-vs-weak``, ...) for the ``bench`` CLI;
* :mod:`~repro.experiments.aggregate` — mean/median/quantile/CI
  reduction into :func:`repro.analysis.format_records` tables.

Quickstart
----------
>>> from repro.experiments import build_experiment, run_experiment
>>> spec = build_experiment("smoke", trials=2)
>>> result = run_experiment(spec, workers=1)
>>> len(result.records) == spec.num_trials
True
"""

from .adapters import ALGORITHMS, algorithm_names, run_trial
from .aggregate import (
    aggregate_experiment,
    aggregate_trials,
    confidence_interval,
    mean_curve,
    per_trial_rows,
    quantile,
)
from .cache import DEFAULT_CACHE_DIR, ResultCache, default_cache
from .campaign import (
    CAMPAIGNS,
    Campaign,
    CampaignMember,
    CampaignOutcome,
    CampaignPlan,
    campaign_names,
    campaign_payload,
    campaign_rows,
    get_campaign,
    grid_points,
    plan_campaign,
    render_campaign,
    run_campaign,
)
from .checkpoint import JOURNAL_FILENAME, CampaignJournal, JournalEntry
from .compare import (
    ComparisonReport,
    compare_artifacts,
    compare_paths,
    load_artifact,
    parse_tolerances,
)
from .env import environment_block, git_revision
from .registry import (
    DEFAULT_ROOT_SEED,
    SCENARIOS,
    Scenario,
    build_experiment,
    get_scenario,
    scenario_names,
)
from .runner import ExperimentResult, TrialResult, run_experiment
from .spec import (
    CODE_VERSION,
    ExperimentPoint,
    ExperimentSpec,
    TrialSpec,
    freeze_params,
    spec_hash,
)

__all__ = [
    "ALGORITHMS",
    "CAMPAIGNS",
    "CODE_VERSION",
    "Campaign",
    "CampaignJournal",
    "CampaignMember",
    "CampaignOutcome",
    "CampaignPlan",
    "ComparisonReport",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_ROOT_SEED",
    "ExperimentPoint",
    "ExperimentResult",
    "ExperimentSpec",
    "JOURNAL_FILENAME",
    "JournalEntry",
    "ResultCache",
    "SCENARIOS",
    "Scenario",
    "TrialResult",
    "TrialSpec",
    "aggregate_experiment",
    "aggregate_trials",
    "algorithm_names",
    "build_experiment",
    "campaign_names",
    "campaign_payload",
    "campaign_rows",
    "compare_artifacts",
    "compare_paths",
    "confidence_interval",
    "default_cache",
    "environment_block",
    "freeze_params",
    "get_campaign",
    "git_revision",
    "get_scenario",
    "grid_points",
    "load_artifact",
    "mean_curve",
    "parse_tolerances",
    "per_trial_rows",
    "plan_campaign",
    "quantile",
    "render_campaign",
    "run_campaign",
    "run_experiment",
    "run_trial",
    "scenario_names",
    "spec_hash",
]
