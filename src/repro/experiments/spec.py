"""Frozen, hashable experiment descriptions.

An experiment is "run algorithm A on graph family G with parameters P,
``trials`` times, from a root seed" — the statistical unit behind every
claim in the paper (success probability ``1 − O(1)/c``, round complexity
``O(log² n)``, trade-off sweeps).  This module gives that sentence a
canonical, content-addressable form:

* :class:`TrialSpec` — one seeded trial, fully self-contained: graph
  spec string, graph seed, algorithm name, frozen parameter tuple and
  the trial's own algorithm seed.  Its :meth:`~TrialSpec.key` is a
  stable BLAKE2b hash of the trial content plus :data:`CODE_VERSION`,
  used by :mod:`~repro.experiments.cache` as the on-disk address.
* :class:`ExperimentSpec` — a named bundle of grid points × trials that
  expands deterministically into :class:`TrialSpec` instances.

Seed derivation flows through :func:`repro.rng.derive_seed`, so trial
seeds depend only on the root seed and the trial's content — never on
the scenario name, the worker that ran it, or the order trials execute
in.  Renaming a scenario therefore keeps its cache entries valid, and a
parallel run draws exactly the radii a serial run would.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping, Tuple

from ..errors import ParameterError
from ..rng import derive_seed

__all__ = [
    "CODE_VERSION",
    "ExperimentPoint",
    "ExperimentSpec",
    "TrialSpec",
    "canonical_json",
    "freeze_params",
    "spec_hash",
]

#: Bumped whenever trial semantics change in a way that invalidates cached
#: records (new metrics, different seed plumbing).  Part of every cache key.
CODE_VERSION = "en16.experiments.v2"

ParamItems = Tuple[Tuple[str, Any], ...]

_SCALAR_TYPES = (bool, int, float, str, type(None))


def freeze_params(params: Mapping[str, Any] | ParamItems | None) -> ParamItems:
    """Normalise a parameter mapping into a sorted, hashable tuple.

    Only JSON scalars are allowed as values so that specs round-trip
    through the on-disk cache without ambiguity.
    """
    if params is None:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    frozen = []
    for name, value in items:
        if not isinstance(name, str):
            raise ParameterError(f"parameter names must be str, got {name!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise ParameterError(
                f"parameter {name!r} must be a JSON scalar, got {type(value).__name__}"
            )
        frozen.append((name, value))
    frozen.sort(key=lambda item: item[0])
    return tuple(frozen)


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` deterministically (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_hash(payload: Any, *, version: str = CODE_VERSION) -> str:
    """Content-address ``payload``: BLAKE2b over its canonical JSON + version."""
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(version.encode("utf8"))
    hasher.update(b"\x1f")
    hasher.update(canonical_json(payload).encode("utf8"))
    return hasher.hexdigest()


@dataclass(frozen=True)
class TrialSpec:
    """One seeded trial: everything needed to recompute its record.

    Attributes
    ----------
    algorithm:
        Name in :data:`repro.experiments.adapters.ALGORITHMS`.
    graph:
        Compact graph spec (``er:200:0.03``, ``grid:16:16``, ...) as
        accepted by :func:`repro.graphs.parse_graph_spec`.
    graph_seed:
        Seed handed to the graph generator.
    params:
        Sorted ``(name, value)`` tuple of algorithm parameters.
    seed:
        The trial's algorithm seed (derived, not chosen).
    index:
        Repetition index inside the owning experiment — informational
        (ordering/labels); deliberately **excluded** from :meth:`key`.
    """

    algorithm: str
    graph: str
    graph_seed: int
    params: ParamItems
    seed: int
    index: int = 0

    def param_dict(self) -> dict[str, Any]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def content(self) -> dict[str, Any]:
        """The hashed identity of this trial (excludes ``index``)."""
        return {
            "algorithm": self.algorithm,
            "graph": self.graph,
            "graph_seed": self.graph_seed,
            "params": [list(item) for item in self.params],
            "seed": self.seed,
        }

    def key(self) -> str:
        """Stable content hash — the cache address of this trial."""
        return spec_hash(self.content())


@dataclass(frozen=True)
class ExperimentPoint:
    """One grid point of an experiment: a graph plus parameter overrides."""

    graph: str
    params: ParamItems = ()

    @classmethod
    def of(cls, graph: str, **params: Any) -> "ExperimentPoint":
        return cls(graph=graph, params=freeze_params(params))


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment: ``points × trials`` seeded trials.

    Attributes
    ----------
    name:
        Display name (scenario registry key); not part of trial identity.
    algorithm:
        Adapter name shared by every trial.
    points:
        Grid points (graph spec + per-point parameters).
    trials:
        Repetitions per point.
    root_seed:
        Root of all per-trial seed derivation.
    vary_graph_seed:
        When true (default), each repetition regenerates random graph
        families with a fresh derived seed; deterministic families
        (grids, trees) are unaffected.  When false, all repetitions
        share one derived graph seed — only the algorithm's coins vary.
    """

    name: str
    algorithm: str
    points: Tuple[ExperimentPoint, ...]
    trials: int = 1
    root_seed: int = 0
    vary_graph_seed: bool = True

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ParameterError(f"trials must be >= 1, got {self.trials}")
        if not self.points:
            raise ParameterError(f"experiment {self.name!r} has no points")

    def with_overrides(
        self,
        trials: int | None = None,
        root_seed: int | None = None,
    ) -> "ExperimentSpec":
        """A copy with ``trials`` and/or ``root_seed`` replaced."""
        return dataclasses.replace(
            self,
            trials=self.trials if trials is None else trials,
            root_seed=self.root_seed if root_seed is None else root_seed,
        )

    def trial_seed(self, point: ExperimentPoint, index: int) -> int:
        """Derived algorithm seed for repetition ``index`` of ``point``."""
        return derive_seed(
            self.root_seed,
            "trial",
            self.algorithm,
            point.graph,
            canonical_json([list(item) for item in point.params]),
            index,
        )

    def graph_seed(self, point: ExperimentPoint, index: int) -> int:
        """Derived generator seed for repetition ``index`` of ``point``."""
        labels: tuple[object, ...] = ("graph", point.graph)
        if self.vary_graph_seed:
            labels += (index,)
        return derive_seed(self.root_seed, *labels)

    def trial_specs(self) -> list[TrialSpec]:
        """Expand into concrete trials, in deterministic order."""
        specs: list[TrialSpec] = []
        for point in self.points:
            for index in range(self.trials):
                specs.append(
                    TrialSpec(
                        algorithm=self.algorithm,
                        graph=point.graph,
                        graph_seed=self.graph_seed(point, index),
                        params=point.params,
                        seed=self.trial_seed(point, index),
                        index=index,
                    )
                )
        return specs

    @property
    def num_trials(self) -> int:
        """Total trial count (``points × trials``)."""
        return len(self.points) * self.trials
