"""Declarative multi-scenario campaigns: shard, run, resume, aggregate.

A single scenario answers one question; the paper's *results* are
trade-off surfaces that need many scenarios side by side — EN vs the
Linial–Saks and MPX baselines, sync vs batch backends, several topology
families.  A :class:`Campaign` composes registered scenarios and inline
graph-spec/parameter grids into one named, content-addressed unit that
the CLI can run, shard, interrupt, resume and diff:

* :class:`CampaignMember` — either a reference to a registry scenario
  (``scenario="er-sweep"``) or an inline grid (``algorithm=`` +
  ``points=``, typically built with :func:`grid_points`);
* :func:`plan_campaign` — materialise members into
  :class:`~repro.experiments.spec.ExperimentSpec`\\ s, expand trials,
  apply the shard filter, and hash the whole configuration;
* :func:`run_campaign` — execute pending trials through the existing
  adapter/cache machinery while journaling completed trial hashes
  (:mod:`~repro.experiments.checkpoint`), then reassemble every
  member's :class:`~repro.experiments.runner.ExperimentResult` in spec
  order.  Output is assembled from the cache, never from execution
  order, so an interrupted-then-resumed campaign renders byte-identical
  stdout and JSON to an uninterrupted one;
* :func:`campaign_rows` / :func:`campaign_payload` /
  :func:`render_campaign` — keyed aggregate rows (the unit
  ``repro campaign compare`` diffs), the JSON artifact, and the stdout
  tables.

Sharding partitions trials by content hash (`trial.key() mod N`), so
shards are deterministic, disjoint, independent of member boundaries,
and stable under campaign renames — N CI legs can each run one shard
against a shared cache.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ParameterError
from .cache import ResultCache
from .checkpoint import CampaignJournal, JournalEntry, require_compatible_header
from ..telemetry import maybe_span, measure_span, resolve, usage_block
from .env import environment_block
from .registry import DEFAULT_ROOT_SEED, get_scenario
from .runner import ExperimentResult, TrialResult, _execute_captured
from .spec import ExperimentPoint, ExperimentSpec, TrialSpec, freeze_params, spec_hash

__all__ = [
    "CAMPAIGNS",
    "Campaign",
    "CampaignMember",
    "CampaignOutcome",
    "CampaignPlan",
    "MemberPlan",
    "ROWS_VERSION",
    "campaign_names",
    "campaign_payload",
    "campaign_rows",
    "get_campaign",
    "grid_points",
    "plan_campaign",
    "render_campaign",
    "run_campaign",
]

#: Version tag hashed into every aggregate-row key; bump when row
#: identity semantics change (baselines must then be regenerated).
ROWS_VERSION = "en16.campaign-rows.v1"


def grid_points(
    graphs: Sequence[str], **params: object
) -> Tuple[ExperimentPoint, ...]:
    """Cartesian product of graph specs × parameter value lists.

    Scalar parameter values are treated as single-element lists, so
    ``grid_points(("torus:24:24",), algo=("en", "ls"), k=5)`` yields two
    points.  Order is deterministic: graphs outermost, then each
    parameter in keyword order.
    """
    if not graphs:
        raise ParameterError("grid_points needs at least one graph spec")
    combos: List[Dict[str, object]] = [{}]
    for name, values in params.items():
        value_list = (
            list(values) if isinstance(values, (list, tuple)) else [values]
        )
        if not value_list:
            raise ParameterError(f"parameter {name!r} has no values")
        combos = [
            {**combo, name: value} for combo in combos for value in value_list
        ]
    return tuple(
        ExperimentPoint(graph=graph, params=freeze_params(combo))
        for graph in graphs
        for combo in combos
    )


@dataclass(frozen=True)
class CampaignMember:
    """One building block of a campaign: a scenario reference or a grid.

    Exactly one of ``scenario`` (a registry name — its points, algorithm
    and default trial count are inherited) or ``algorithm`` (an inline
    grid over ``points``) must be given.  ``trials`` overrides the
    scenario default / sets the grid's repetition count.
    """

    name: str
    scenario: Optional[str] = None
    algorithm: Optional[str] = None
    points: Tuple[ExperimentPoint, ...] = ()
    trials: Optional[int] = None
    vary_graph_seed: bool = True

    def __post_init__(self) -> None:
        if (self.scenario is None) == (self.algorithm is None):
            raise ParameterError(
                f"member {self.name!r} must set exactly one of scenario/algorithm"
            )
        if self.algorithm is not None and not self.points:
            raise ParameterError(f"grid member {self.name!r} has no points")
        if self.scenario is not None and self.points:
            raise ParameterError(
                f"scenario member {self.name!r} cannot also carry grid points"
            )

    def spec(self, root_seed: int, trials: Optional[int] = None) -> ExperimentSpec:
        """Materialise this member as a concrete experiment.

        ``trials`` (the campaign-level override) wins over the member's
        own ``trials``, which wins over the scenario default.
        """
        effective = trials if trials is not None else self.trials
        if self.scenario is not None:
            return get_scenario(self.scenario).spec(
                self.name, trials=effective, root_seed=root_seed
            )
        return ExperimentSpec(
            name=self.name,
            algorithm=self.algorithm or "",
            points=self.points,
            trials=effective if effective is not None else 1,
            root_seed=root_seed,
            vary_graph_seed=self.vary_graph_seed,
        )


@dataclass(frozen=True)
class Campaign:
    """A named bundle of members sharing one root seed."""

    description: str
    members: Tuple[CampaignMember, ...]
    root_seed: int = DEFAULT_ROOT_SEED

    def __post_init__(self) -> None:
        if not self.members:
            raise ParameterError("campaign has no members")
        names = [member.name for member in self.members]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate member names: {sorted(names)}")


# --------------------------------------------------------------------------
# Registry

_SHOOTOUT_SYNC_GRAPHS = ("torus:24:24", "gnp_fast:1024:0.006", "regular:1024:8")
_SHOOTOUT_BATCH_GRAPHS = _SHOOTOUT_SYNC_GRAPHS + (
    "torus:40:40",
    "gnp_fast:4096:0.0015",
    "regular:4096:6",
)


def _shootout_members() -> Tuple[CampaignMember, ...]:
    """EN vs LS vs MPX on both backends: sync legs at the small points
    (the reference simulator is the slow contestant), batch legs across
    the full torus/gnp_fast/expander families."""
    members = []
    for algo, extra in (("en", {"k": 5}), ("ls", {"k": 5}), ("mpx", {"beta": 0.3})):
        members.append(
            CampaignMember(
                name=f"{algo}-sync",
                algorithm="shootout",
                points=grid_points(
                    _SHOOTOUT_SYNC_GRAPHS, algo=algo, backend="sync", **extra
                ),
                trials=2,
            )
        )
        members.append(
            CampaignMember(
                name=f"{algo}-batch",
                algorithm="shootout",
                points=grid_points(
                    _SHOOTOUT_BATCH_GRAPHS, algo=algo, backend="batch", **extra
                ),
                trials=2,
            )
        )
    return tuple(members)


CAMPAIGNS: Dict[str, Campaign] = {
    "shootout": Campaign(
        description="EN vs LS vs MPX protocol race (sync and batch backends) "
        "across torus / gnp_fast / random-regular expander families; the "
        "nightly CI perf gate compares its artifact against "
        "benchmarks/baselines/ci-shootout.json",
        members=_shootout_members(),
    ),
    "quality": Campaign(
        description="Decomposition-quality sweep composing the registered "
        "er-sweep, grid-vs-tree and strong-vs-weak scenarios into one "
        "artifact",
        members=(
            CampaignMember(name="er-sweep", scenario="er-sweep"),
            CampaignMember(name="grid-vs-tree", scenario="grid-vs-tree"),
            CampaignMember(name="strong-vs-weak", scenario="strong-vs-weak"),
        ),
    ),
    "robustness": Campaign(
        description="Adversarial-execution sweep on the async engine: "
        "every protocol under every delivery schedule (fault-free legs "
        "must match the sync reference bit-for-bit), plus an EN fault "
        "grid measuring drift under seeded drops and crash windows",
        members=(
            CampaignMember(
                name="schedules",
                algorithm="robustness",
                points=grid_points(
                    ("gnp_fast:96:0.05",),
                    algo=("en", "ls", "mpx"),
                    delivery=("fifo", "latest:3", "random:4", "starve:3:0.5"),
                    k=4,
                    beta=0.3,
                ),
                trials=2,
            ),
            CampaignMember(
                name="faults",
                algorithm="robustness",
                points=grid_points(
                    ("gnp_fast:96:0.05",),
                    algo="en",
                    k=4,
                    delivery="random:2",
                    faults=(
                        "drop:0.05",
                        "drop:0.15",
                        "crash:3@2-6",
                        "crash:3@2-6;crash:17@5-11;redeliver",
                        "drop:0.03;crash:5@3-9",
                    ),
                ),
                trials=2,
            ),
        ),
    ),
    "serving": Campaign(
        description="Oracle-serving sweep: the loopback scenario plus a "
        "knob grid over micro-batch size and answer-cache capacity — the "
        "deterministic counter/row-identity companion to the latency "
        "numbers in benchmarks/bench_serving.py",
        members=(
            CampaignMember(name="loopback", scenario="serving"),
            CampaignMember(
                name="knobs",
                algorithm="serving",
                points=grid_points(
                    ("gnp_fast:512:0.012",),
                    queries=256,
                    max_batch=(1, 16, 64),
                    cache=(0, 512),
                ),
                trials=1,
            ),
        ),
    ),
    "campaign-smoke": Campaign(
        description="Tiny end-to-end campaign (scenario member + shootout "
        "grid member) for CI and the checkpoint/resume tests",
        members=(
            CampaignMember(name="runtime", scenario="smoke"),
            CampaignMember(
                name="race",
                algorithm="shootout",
                points=grid_points(
                    ("gnp_fast:64:0.08",),
                    algo=("en", "ls", "mpx"),
                    backend=("sync", "batch"),
                    k=3,
                ),
                trials=1,
            ),
        ),
    ),
}


def campaign_names() -> List[str]:
    """Registered campaign names, sorted."""
    return sorted(CAMPAIGNS)


def get_campaign(name: str) -> Campaign:
    """Look up ``name`` or raise :class:`ParameterError` with suggestions."""
    try:
        return CAMPAIGNS[name]
    except KeyError:
        raise ParameterError(
            f"unknown campaign {name!r} (try one of: {', '.join(campaign_names())})"
        ) from None


# --------------------------------------------------------------------------
# Planning

@dataclass(frozen=True)
class MemberPlan:
    """A member materialised into a spec plus its shard-filtered trials."""

    member: CampaignMember
    spec: ExperimentSpec
    trials: Tuple[TrialSpec, ...]
    total_trials: int  # before shard filtering


@dataclass(frozen=True)
class CampaignPlan:
    """Everything a run/resume/status invocation needs, precomputed."""

    name: str
    campaign: Campaign
    members: Tuple[MemberPlan, ...]
    shard_index: int
    shard_count: int
    trials_override: Optional[int]
    config_hash: str

    @property
    def num_trials(self) -> int:
        """Trials in this shard."""
        return sum(len(plan.trials) for plan in self.members)

    def journal_header(self) -> dict:
        """The identity block a compatible journal must carry."""
        return {
            "campaign": self.name,
            "config_hash": self.config_hash,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
        }


def _in_shard(trial: TrialSpec, index: int, count: int) -> bool:
    return count <= 1 or int(trial.key(), 16) % count == index


def plan_campaign(
    name: str,
    campaign: Optional[Campaign] = None,
    trials: Optional[int] = None,
    shard: Tuple[int, int] = (0, 1),
) -> CampaignPlan:
    """Materialise campaign ``name`` into a :class:`CampaignPlan`.

    ``campaign`` may be supplied directly (tests, ad-hoc campaigns);
    otherwise ``name`` is resolved through :data:`CAMPAIGNS`.
    """
    shard_index, shard_count = shard
    if shard_count < 1 or not 0 <= shard_index < shard_count:
        raise ParameterError(
            f"shard must be index/count with 0 <= index < count, "
            f"got {shard_index}/{shard_count}"
        )
    if trials is not None and trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    if campaign is None:
        campaign = get_campaign(name)
    members = []
    config_members = []
    for member in campaign.members:
        spec = member.spec(campaign.root_seed, trials)
        expanded = spec.trial_specs()
        kept = tuple(
            t for t in expanded if _in_shard(t, shard_index, shard_count)
        )
        members.append(
            MemberPlan(
                member=member, spec=spec, trials=kept, total_trials=len(expanded)
            )
        )
        config_members.append(
            {
                "member": member.name,
                "algorithm": spec.algorithm,
                "points": [
                    [point.graph, [list(item) for item in point.params]]
                    for point in spec.points
                ],
                "trials": spec.trials,
                "root_seed": spec.root_seed,
                "vary_graph_seed": spec.vary_graph_seed,
            }
        )
    config = {
        "campaign": name,
        "members": config_members,
        "shard_index": shard_index,
        "shard_count": shard_count,
    }
    return CampaignPlan(
        name=name,
        campaign=campaign,
        members=tuple(members),
        shard_index=shard_index,
        shard_count=shard_count,
        trials_override=trials,
        config_hash=spec_hash(config, version=ROWS_VERSION),
    )


# --------------------------------------------------------------------------
# Execution

@dataclass
class CampaignOutcome:
    """What one run/resume invocation did, plus the assembled results."""

    plan: CampaignPlan
    interrupted: bool
    executed: int  # trials freshly executed by this invocation
    cache_hits: int  # trials resolved from the cache by this invocation
    members: List[Tuple[MemberPlan, ExperimentResult]] = field(default_factory=list)

    @property
    def failures(self) -> List[TrialResult]:
        """Failed trials across all members (empty while interrupted)."""
        return [f for _, result in self.members for f in result.failures]


def _execute_tagged(tagged):
    """Pool worker: run one trial, keep its position tag attached."""
    position, trial = tagged
    record, error = _execute_captured(trial)
    return position, record, error


def run_campaign(
    plan: CampaignPlan,
    cache: ResultCache,
    journal: CampaignJournal,
    workers: int = 1,
    stop_after: Optional[int] = None,
    resume: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> CampaignOutcome:
    """Execute ``plan``, journaling each completed trial hash.

    ``run`` (``resume=False``) refuses a journal that already holds
    completed trials; ``resume`` requires one and validates its header.
    ``stop_after`` cleanly interrupts the invocation after that many
    freshly executed trials (time-boxed CI legs, and the crash stand-in
    for the resume tests) — the outcome is flagged ``interrupted`` and
    carries no assembled results.

    Assembly reads every record back from the cache in spec order, so
    the rendered output is a pure function of the campaign definition —
    not of which invocation computed which trial.
    """
    if workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    if stop_after is not None and stop_after < 1:
        raise ParameterError(f"stop-after must be >= 1, got {stop_after}")
    emit = log if log is not None else (lambda message: None)

    header, entries = journal.read()
    if resume:
        if header is None:
            raise ParameterError(
                f"nothing to resume: no journal at {journal.path}"
            )
        require_compatible_header(header, plan.journal_header())
    else:
        if entries:
            raise ParameterError(
                f"journal at {journal.path} already records "
                f"{len(entries)} completed trial(s); continue it with "
                "`repro campaign resume` or discard it with --fresh"
            )
        journal.create(plan.journal_header())

    # Partition this shard's trials: journaled failures stay failed,
    # cache hits are adopted into the journal, the rest run.
    pending: List[Tuple[int, TrialSpec]] = []
    cache_hits = 0
    member_names = [plan_member.member.name for plan_member in plan.members]
    for member_index, member_plan in enumerate(plan.members):
        for trial in member_plan.trials:
            key = trial.key()
            entry = entries.get(key)
            if entry is not None and entry.error is not None:
                continue
            if cache.get(trial) is not None:
                cache_hits += 1
                if entry is None:
                    adopted = JournalEntry(
                        key=key, member=member_names[member_index]
                    )
                    journal.append(adopted)
                    entries[key] = adopted
                continue
            pending.append((member_index, trial))

    executed = 0
    interrupted = False
    tel = resolve(None)
    with maybe_span(
        tel, "campaign", name=plan.name, config=plan.config_hash
    ) as campaign_span:
        if pending:
            emit(
                f"{plan.name}: {len(pending)} trial(s) to execute "
                f"({cache_hits} cached, {len(entries)} journaled)"
            )
            tagged = list(enumerate(pending))

            def serial():
                for position, (_, trial) in tagged:
                    with maybe_span(tel, "trial", key=trial.key()) as tspan, \
                            measure_span(tspan):
                        record, error = _execute_captured(trial)
                    yield position, record, error

            try:
                if workers > 1 and len(tagged) > 1:
                    pool = multiprocessing.Pool(processes=workers)
                    outcomes = pool.imap_unordered(
                        _execute_tagged,
                        [(position, trial) for position, (_, trial) in tagged],
                        chunksize=1,
                    )
                else:
                    pool = None
                    outcomes = serial()
                try:
                    for position, record, error in outcomes:
                        member_index, trial = pending[position]
                        if record is not None:
                            cache.put(trial, record)
                        entry = JournalEntry(
                            key=trial.key(),
                            member=member_names[member_index],
                            error=error,
                        )
                        journal.append(entry)
                        entries[entry.key] = entry
                        executed += 1
                        emit(
                            f"  [{executed}/{len(pending)}] "
                            f"{entry.member}: {trial.graph}"
                            + ("" if error is None else "  FAILED")
                        )
                        if (
                            stop_after is not None
                            and executed >= stop_after
                            and executed < len(pending)
                        ):
                            interrupted = True
                            break
                finally:
                    if pool is not None:
                        pool.terminate()
                        pool.join()
            except KeyboardInterrupt:
                interrupted = True

        if campaign_span is not None:
            campaign_span.add("executed", executed)
            campaign_span.add("cache_hits", cache_hits)
            campaign_span.annotate(interrupted=interrupted)
    outcome = CampaignOutcome(
        plan=plan,
        interrupted=interrupted,
        executed=executed,
        cache_hits=cache_hits,
    )
    if interrupted:
        return outcome

    # Reassemble in spec order from the cache + journaled failures.
    for member_plan in plan.members:
        results: List[TrialResult] = []
        for trial in member_plan.trials:
            record = cache.get(trial)
            if record is not None:
                results.append(
                    TrialResult(trial=trial, record=record, from_cache=True)
                )
                continue
            entry = entries.get(trial.key())
            if entry is None or entry.error is None:
                raise RuntimeError(
                    f"campaign bookkeeping hole: trial {trial.key()} of "
                    f"{member_plan.member.name!r} has neither a cached "
                    "record nor a journaled failure"
                )
            results.append(TrialResult(trial=trial, record=None, error=entry.error))
        outcome.members.append(
            (
                member_plan,
                ExperimentResult(spec=member_plan.spec, results=results),
            )
        )
    return outcome


# --------------------------------------------------------------------------
# Rendering: keyed rows, JSON artifact, stdout tables

def _row_key(
    member: str,
    algorithm: str,
    graph: str,
    params: Tuple[Tuple[str, object], ...],
    trials: int,
    root_seed: int,
) -> str:
    return spec_hash(
        {
            "member": member,
            "algorithm": algorithm,
            "graph": graph,
            "params": [list(item) for item in params],
            "trials": trials,
            "root_seed": root_seed,
        },
        version=ROWS_VERSION,
    )


def campaign_rows(outcome: CampaignOutcome) -> List[dict]:
    """Flat keyed aggregate rows — the unit ``campaign compare`` diffs.

    One row per (member, experiment point): identity fields plus a
    ``metrics`` dict of the aggregated record columns.  The ``key`` is a
    content hash of the identity, so two artifacts of the same campaign
    definition align row-for-row however they were produced.
    """
    from .aggregate import aggregate_experiment

    rows: List[dict] = []
    for member_plan, result in outcome.members:
        spec = member_plan.spec
        for agg in aggregate_experiment(result):
            graph = agg["graph"]
            # Aggregate rows are ordered identity-first: graph, the
            # group's own params, then "trials" and the reduced metrics.
            param_items: List[Tuple[str, object]] = []
            metrics: Dict[str, object] = {}
            seen_trials = False
            for name, value in agg.items():
                if name == "graph":
                    continue
                if name == "trials":
                    seen_trials = True
                    continue
                if seen_trials:
                    metrics[name] = value
                else:
                    param_items.append((name, value))
            params = freeze_params(param_items)
            rows.append(
                {
                    "key": _row_key(
                        member_plan.member.name,
                        spec.algorithm,
                        graph,
                        params,
                        spec.trials,
                        spec.root_seed,
                    ),
                    "member": member_plan.member.name,
                    "algorithm": spec.algorithm,
                    "graph": graph,
                    "params": dict(params),
                    "trials": agg["trials"],
                    "metrics": metrics,
                }
            )
    return rows


def campaign_payload(outcome: CampaignOutcome) -> dict:
    """The JSON artifact for one completed campaign invocation.

    With telemetry enabled the payload carries a ``telemetry`` block
    (span summary plus the trace-file path, when writing to one), so a
    campaign artifact links to its trace.  Untraced payloads are
    byte-identical to pre-telemetry ones — the key is simply absent.
    """
    plan = outcome.plan
    payload = {
        "kind": "campaign",
        "campaign": plan.name,
        "config_hash": plan.config_hash,
        "root_seed": plan.campaign.root_seed,
        "shard": {"index": plan.shard_index, "count": plan.shard_count},
        "trials_override": plan.trials_override,
        "members": [
            {
                "member": member_plan.member.name,
                "algorithm": member_plan.spec.algorithm,
                "scenario": member_plan.member.scenario,
                "points": len(member_plan.spec.points),
                "trials": member_plan.spec.trials,
                "shard_trials": len(member_plan.trials),
                "failures": len(result.failures),
            }
            for member_plan, result in outcome.members
        ],
        "rows": campaign_rows(outcome),
        "failures": len(outcome.failures),
        "environment": environment_block(),
    }
    tel = resolve(None)
    if tel is not None:
        payload["telemetry"] = tel.block()
        # Peak RSS / CPU ride along only on traced runs: untraced
        # artifacts stay byte-identical to pre-telemetry ones (the
        # resume-equivalence CI check `cmp`s them).
        payload["resources"] = usage_block()
    return payload


def render_campaign(outcome: CampaignOutcome) -> str:
    """Deterministic stdout for a completed campaign: tables + summary.

    Everything here is a pure function of the assembled results —
    wall-clock, cache hits and worker counts stay on stderr — so an
    interrupted-then-resumed run prints bytes identical to a one-shot
    run.
    """
    from ..analysis import format_records
    from .aggregate import aggregate_experiment

    plan = outcome.plan
    blocks: List[str] = []
    summary_rows: List[dict] = []
    for member_plan, result in outcome.members:
        spec = member_plan.spec
        if member_plan.trials:
            blocks.append(
                format_records(
                    aggregate_experiment(result),
                    title=f"{member_plan.member.name}: algorithm "
                    f"{spec.algorithm!r}, {spec.trials} trial(s) x "
                    f"{len(spec.points)} point(s)",
                )
            )
        summary_rows.append(
            {
                "member": member_plan.member.name,
                "algorithm": spec.algorithm,
                "points": len(spec.points),
                "trials": spec.trials,
                "shard_trials": len(member_plan.trials),
                "failed": len(result.failures),
            }
        )
    shard = (
        f", shard {plan.shard_index + 1}/{plan.shard_count}"
        if plan.shard_count > 1
        else ""
    )
    blocks.append(
        format_records(
            summary_rows,
            title=f"campaign {plan.name!r} (root seed "
            f"{plan.campaign.root_seed}{shard}, config {plan.config_hash[:12]})",
        )
    )
    return "\n\n".join(blocks)
