"""Crash-safe campaign journal: which trials are already done.

A campaign run can take hours (many scenarios × grids × trials), so the
executor must survive being killed at any instant and continue exactly
where it stopped.  The division of labour is deliberate:

* trial **records** live in the content-addressed
  :class:`~repro.experiments.cache.ResultCache` (one atomic JSON file
  per trial hash — the existing runner infrastructure);
* the **journal** is an append-only JSONL file holding the campaign's
  identity header plus one line per *completed* trial hash (and the
  captured error text for failed trials, which the cache cannot hold).

Every append is flushed and ``fsync``\\ ed before the executor moves on,
so a journaled trial is durable; a crash mid-append leaves at most one
torn trailing line, which :meth:`CampaignJournal.read` skips.  Because
entries carry only hashes, the journal never disagrees with the cache:
a journaled-ok trial whose cache record has vanished is simply
re-executed on resume (adapters are pure functions of the trial spec,
so the re-run reproduces the identical record).

The header pins the campaign *configuration hash* (materialised member
grids, trial counts, root seed, shard) — resuming with a different
campaign definition, ``--trials`` override or shard is refused instead
of silently mixing incompatible runs.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ParameterError

__all__ = [
    "JOURNAL_FILENAME",
    "JOURNAL_VERSION",
    "CampaignJournal",
    "JournalEntry",
    "require_compatible_header",
]

#: Bumped when the journal line format changes incompatibly.
JOURNAL_VERSION = "en16.campaign-journal.v1"

#: Default journal filename inside a campaign run directory.
JOURNAL_FILENAME = "journal.jsonl"


@dataclass(frozen=True)
class JournalEntry:
    """One completed trial: its content hash, member, and outcome."""

    key: str
    member: str
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Whether the trial completed with a record (vs a captured failure)."""
        return self.error is None

    def to_line(self) -> str:
        payload = {"key": self.key, "member": self.member}
        if self.error is not None:
            payload["error"] = self.error
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def require_compatible_header(found: dict, expected: dict) -> None:
    """Refuse to resume a journal written by a different campaign config."""
    mismatched = sorted(
        name
        for name in set(found) | set(expected)
        if found.get(name) != expected.get(name)
    )
    if mismatched:
        details = ", ".join(
            f"{name}: journal has {found.get(name)!r}, run wants {expected.get(name)!r}"
            for name in mismatched
        )
        raise ParameterError(
            f"journal is incompatible with this campaign invocation ({details}); "
            "re-run with matching options or start fresh with --fresh"
        )


class CampaignJournal:
    """An append-only JSONL journal of completed trial hashes."""

    def __init__(self, path: pathlib.Path | str):
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        """Whether a journal file is present on disk."""
        return self.path.is_file()

    def create(self, header: dict) -> None:
        """Start a fresh journal containing only ``header``."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf8") as handle:
            handle.write(
                json.dumps(
                    {"journal_version": JOURNAL_VERSION, **header},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                + "\n"
            )
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, entry: JournalEntry) -> None:
        """Durably record one completed trial (flush + fsync)."""
        with self.path.open("a", encoding="utf8") as handle:
            handle.write(entry.to_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def read(self) -> Tuple[Optional[dict], Dict[str, JournalEntry]]:
        """``(header, entries-by-key)``; ``(None, {})`` when absent.

        Lines that fail to parse (the torn tail of a crashed append) are
        skipped — their trials simply re-run on resume.  A later entry
        for the same key wins, so re-executed trials overwrite their
        earlier outcome.
        """
        if not self.exists():
            return None, {}
        header: Optional[dict] = None
        entries: Dict[str, JournalEntry] = {}
        with self.path.open("r", encoding="utf8") as handle:
            for line in handle:
                try:
                    payload = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(payload, dict):
                    continue
                if "journal_version" in payload:
                    if payload.get("journal_version") == JOURNAL_VERSION:
                        header = {
                            k: v for k, v in payload.items() if k != "journal_version"
                        }
                    continue
                key = payload.get("key")
                member = payload.get("member")
                if isinstance(key, str) and isinstance(member, str):
                    entries[key] = JournalEntry(
                        key=key, member=member, error=payload.get("error")
                    )
        return header, entries

    def delete(self) -> None:
        """Remove the journal file, if present."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
