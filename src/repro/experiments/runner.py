"""Trial executor: serial or fanned out over a ``multiprocessing`` pool.

:func:`run_experiment` is the one entry point every benchmark and the
``bench`` CLI subcommand go through:

1. expand the :class:`ExperimentSpec` into trials (deterministic order);
2. resolve cache hits (when a :class:`ResultCache` is supplied);
3. execute the misses — serially for ``workers<=1``, otherwise over a
   process pool with explicit chunking;
4. store fresh records back into the cache and reassemble everything in
   the original trial order.

Because adapters are pure functions of the trial spec and seeds are
derived per trial (never from execution order), the assembled records
are identical whatever ``workers`` is — the parallel path changes only
wall-clock time.  A failing trial is captured as a :class:`TrialResult`
with ``error`` set instead of killing the whole sweep.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ParameterError
from ..telemetry import maybe_span, measure_span, resolve
from .adapters import run_trial
from .cache import ResultCache
from .spec import ExperimentSpec, TrialSpec

__all__ = ["ExperimentResult", "TrialResult", "run_experiment"]


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one trial: a record, or a captured failure."""

    trial: TrialSpec
    record: Optional[Dict[str, Any]]
    error: Optional[str] = None
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        """Whether the trial produced a record."""
        return self.record is not None


@dataclass
class ExperimentResult:
    """All trial results of one experiment, in spec order."""

    spec: ExperimentSpec
    results: List[TrialResult] = field(default_factory=list)

    @property
    def records(self) -> List[Dict[str, Any]]:
        """Successful records, in trial order."""
        return [result.record for result in self.results if result.record is not None]

    @property
    def failures(self) -> List[TrialResult]:
        """Trials that raised, with their captured tracebacks."""
        return [result for result in self.results if result.error is not None]

    @property
    def cache_hits(self) -> int:
        """How many trials were served from the cache."""
        return sum(1 for result in self.results if result.from_cache)

    @property
    def executed(self) -> int:
        """How many trials actually ran (hit or failed, not cached)."""
        return len(self.results) - self.cache_hits

    def raise_on_failure(self) -> "ExperimentResult":
        """Raise ``RuntimeError`` summarising failures, if any; else ``self``."""
        if self.failures:
            first = self.failures[0]
            raise RuntimeError(
                f"{len(self.failures)}/{len(self.results)} trials of "
                f"{self.spec.name!r} failed; first: {first.error}"
            )
        return self


def _execute_captured(trial: TrialSpec) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
    """Run one trial, converting any exception into a string (picklable)."""
    try:
        return run_trial(trial), None
    except Exception as exc:  # noqa: BLE001 — sweep survival is the contract
        return None, f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"


def _pool_chunksize(pending: int, workers: int) -> int:
    """Chunk so each worker gets ~4 batches (amortise IPC, keep balance)."""
    return max(1, pending // (workers * 4))


def run_experiment(
    spec: ExperimentSpec,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    chunksize: Optional[int] = None,
) -> ExperimentResult:
    """Execute every trial of ``spec``; see the module docstring.

    Parameters
    ----------
    spec:
        The experiment to run.
    workers:
        ``<=1`` runs in-process; ``N>1`` fans the cache misses out over a
        ``multiprocessing.Pool(N)``.
    cache:
        Optional :class:`ResultCache`; hits skip execution, fresh records
        are written back.
    chunksize:
        Trials per pool task; defaults to :func:`_pool_chunksize`.
    """
    if workers < 0:
        raise ParameterError(f"workers must be >= 0, got {workers}")
    trials = spec.trial_specs()
    resolved: List[Optional[TrialResult]] = [None] * len(trials)

    pending: List[Tuple[int, TrialSpec]] = []
    for position, trial in enumerate(trials):
        hit = cache.get(trial) if cache is not None else None
        if hit is not None:
            resolved[position] = TrialResult(trial=trial, record=hit, from_cache=True)
        else:
            pending.append((position, trial))

    tel = resolve(None)
    with maybe_span(tel, "experiment", name=spec.name) as span:
        if pending:
            todo = [trial for _, trial in pending]
            if workers > 1 and len(todo) > 1:
                with multiprocessing.Pool(processes=workers) as pool:
                    outcomes = pool.map(
                        _execute_captured,
                        todo,
                        chunksize or _pool_chunksize(len(todo), workers),
                    )
            else:
                outcomes = []
                for trial in todo:
                    with maybe_span(tel, "trial", key=trial.key()) as tspan, \
                            measure_span(tspan):
                        outcomes.append(_execute_captured(trial))
            for (position, trial), (record, error) in zip(pending, outcomes):
                resolved[position] = TrialResult(
                    trial=trial, record=record, error=error
                )
                if record is not None and cache is not None:
                    cache.put(trial, record)
        if span is not None:
            span.add("trials", len(trials))
            span.add("cache_hits", len(trials) - len(pending))
            span.add("executed", len(pending))

    return ExperimentResult(spec=spec, results=[r for r in resolved if r is not None])
