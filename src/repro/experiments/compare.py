"""Artifact comparison: the perf-baseline regression gate.

``repro campaign compare`` diffs two JSON artifacts and exits nonzero
when a metric regresses beyond its tolerance — the piece that turns the
pile of ``BENCH_*.json`` / ``bench --json`` / campaign artifacts from
isolated snapshots into a measured trajectory.  Three artifact shapes
are understood:

* **campaign** artifacts (``"kind": "campaign"``) — rows already carry a
  content-hash ``key`` and a separate ``metrics`` block;
* **bench** artifacts (``python -m repro bench --json``, recognised by
  their ``"scenario"`` field) — aggregate rows are ordered
  identity-first (graph, params, then ``trials`` and the metrics), so
  the columns before ``trials`` key the row;
* **benchmark table** artifacts (``benchmarks/_common.emit`` /
  ``BENCH_*.json``, recognised by their ``"benchmark"`` field) — rows
  are keyed by their first string-valued column (the workload label).

Metric policy is inferred from the name:

* throughput-flavoured metrics (``q/s``, ``qps``, ``speedup``, ...) are
  higher-is-better with a relative tolerance;
* timing-flavoured metrics (``*_s``, ``* s``, ``*seconds``, ``*time*``)
  are lower-is-better with a relative tolerance;
* everything else — rounds, messages, words, checksums, colours — is
  **deterministic by the repository's seeding contract**, so any change
  at all is reported as drift.

``--tolerance NAME=FRAC`` overrides the relative tolerance per metric
(glob patterns allowed).  The comparison is environment-aware: when the
two artifacts' environment blocks differ (other than the git SHA, which
legitimately differs across the PRs being compared, and the run's own
``resources`` usage), wall-clock-style regressions are downgraded to
warnings — numbers measured on different interpreters or kernel
backends are not comparable — while the deterministic contract is
still enforced.  When both artifacts stamp a ``resources`` block (peak
RSS, CPU time), those are band-compared too — advisory warnings at the
same 10% default tolerance, overridable as ``resources.<name>=FRAC``.
"""

from __future__ import annotations

import fnmatch
import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ParameterError
from .spec import spec_hash

__all__ = [
    "ArtifactRow",
    "ComparisonReport",
    "DEFAULT_REL_TOLERANCE",
    "Finding",
    "compare_artifacts",
    "compare_paths",
    "load_artifact",
    "metric_policy",
    "parse_tolerances",
]

#: Default relative tolerance for timing/throughput metrics: a change
#: beyond 10% in the bad direction is a regression (so a 20% synthetic
#: slowdown trips the gate with margin).
DEFAULT_REL_TOLERANCE = 0.10

_KEY_VERSION = "en16.compare-keys.v1"

# Substrings marking a metric as throughput-like (higher is better).
_THROUGHPUT_MARKS = ("q/s", "qps", "per_sec", "throughput", "speedup")
# Suffix/substring marks for wall-clock-like metrics (lower is better).
# Suffix-only for the unit shorthands: a "ms"/"s" *substring* would
# swallow deterministic names like "messages".
_TIMING_SUFFIXES = (
    "_s", " s", "_ms", " ms", "_us", " us",
    "_sec", "_secs", "seconds", "millis", "micros",
)
_TIMING_MARKS = ("time", "second", "latency")


@dataclass(frozen=True)
class ArtifactRow:
    """One comparable row: stable key, display label, numeric metrics."""

    key: str
    label: str
    metrics: Mapping[str, object]


@dataclass(frozen=True)
class Artifact:
    """A loaded artifact: its kind, rows by key, environment block."""

    kind: str
    path: str
    rows: Dict[str, ArtifactRow]
    environment: Optional[dict]


@dataclass(frozen=True)
class Finding:
    """One comparison outcome worth reporting."""

    status: str  # "regressed" | "drift" | "improved" | "warning"
    label: str
    metric: str
    baseline: object
    current: object
    detail: str

    @property
    def failing(self) -> bool:
        return self.status in ("regressed", "drift")


@dataclass
class ComparisonReport:
    """Everything ``campaign compare`` prints and exits on."""

    baseline: Artifact
    current: Artifact
    environment_matches: bool
    compared_rows: int
    compared_metrics: int
    findings: List[Finding] = field(default_factory=list)

    @property
    def failures(self) -> List[Finding]:
        return [finding for finding in self.findings if finding.failing]

    @property
    def exit_code(self) -> int:
        return 1 if self.failures else 0


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compact_params(row: Mapping[str, object], names: Sequence[str]) -> str:
    parts = [f"{name}={row[name]}" for name in names]
    return f"[{','.join(parts)}]" if parts else ""


def _campaign_rows(payload: dict) -> Dict[str, ArtifactRow]:
    rows: Dict[str, ArtifactRow] = {}
    for row in payload.get("rows", []):
        key = row.get("key")
        metrics = row.get("metrics")
        if not isinstance(key, str) or not isinstance(metrics, dict):
            continue
        params = row.get("params") or {}
        label = f"{row.get('member')}:{row.get('graph')}" + _compact_params(
            params, sorted(params)
        )
        rows[key] = ArtifactRow(key=key, label=label, metrics=metrics)
    return rows


def _bench_rows(payload: dict) -> Dict[str, ArtifactRow]:
    scenario = payload.get("scenario")
    rows: Dict[str, ArtifactRow] = {}
    for index, row in enumerate(payload.get("rows", [])):
        if not isinstance(row, dict):
            continue
        identity: List[Tuple[str, object]] = []
        metrics: Dict[str, object] = {}
        if "trials" in row:
            # Aggregate rows are ordered identity-first: graph and the
            # point's params precede the "trials" column.
            seen_trials = False
            for name, value in row.items():
                if name == "trials":
                    seen_trials = True
                elif seen_trials:
                    metrics[name] = value
                else:
                    identity.append((name, value))
        else:
            # --per-trial rows: (graph, trial) identify the row; the
            # "cached" column is execution accounting, not a metric.
            for name, value in row.items():
                if name in ("graph", "trial"):
                    identity.append((name, value))
                elif name != "cached":
                    metrics[name] = value
        if not identity:
            identity = [("row", index)]
        key = spec_hash(
            {"scenario": scenario, "identity": [list(item) for item in identity]},
            version=_KEY_VERSION,
        )
        label = f"{scenario}:" + ":".join(str(value) for _, value in identity)
        rows[key] = ArtifactRow(key=key, label=label or f"row{index}", metrics=metrics)
    return rows


def _benchmark_rows(payload: dict) -> Dict[str, ArtifactRow]:
    benchmark = payload.get("benchmark")
    rows: Dict[str, ArtifactRow] = {}
    for index, row in enumerate(payload.get("rows", [])):
        if not isinstance(row, dict):
            continue
        # Every string-valued column is identity (workload label, op,
        # mode, ...): tables legitimately carry several rows per
        # workload, distinguished by a second string column.
        workload = [
            (name, value) for name, value in row.items() if isinstance(value, str)
        ] or [("row", str(index))]
        key = spec_hash(
            {"benchmark": benchmark, "workload": [list(item) for item in workload]},
            version=_KEY_VERSION,
        )
        metrics = {
            name: value for name, value in row.items() if not isinstance(value, str)
        }
        label = f"{benchmark}:" + ":".join(str(value) for _, value in workload)
        rows[key] = ArtifactRow(key=key, label=label, metrics=metrics)
    return rows


def load_artifact(path: pathlib.Path | str) -> Artifact:
    """Load and normalise one artifact into keyed comparable rows."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf8"))
    except OSError as exc:
        raise ParameterError(f"cannot read artifact {path}: {exc}") from exc
    except ValueError as exc:
        raise ParameterError(f"artifact {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ParameterError(f"artifact {path} is not a JSON object")
    if payload.get("kind") == "campaign":
        kind, rows = "campaign", _campaign_rows(payload)
    elif "scenario" in payload:
        kind, rows = "bench", _bench_rows(payload)
    elif "benchmark" in payload:
        kind, rows = "benchmark", _benchmark_rows(payload)
    else:
        raise ParameterError(
            f"artifact {path} has an unrecognised shape (expected a campaign, "
            "`bench --json`, or benchmark-table artifact)"
        )
    environment = payload.get("environment")
    return Artifact(
        kind=kind,
        path=str(path),
        rows=rows,
        environment=environment if isinstance(environment, dict) else None,
    )


def parse_tolerances(settings: Sequence[str]) -> Dict[str, float]:
    """Parse repeated ``NAME=FRAC`` CLI settings into a tolerance map."""
    tolerances: Dict[str, float] = {}
    for setting in settings:
        name, separator, raw = setting.partition("=")
        try:
            value = float(raw) if separator else None
        except ValueError:
            value = None
        if not name or value is None or value < 0:
            raise ParameterError(
                f"bad tolerance {setting!r} (expected NAME=FRACTION, "
                "e.g. 'rounds=0.05' or 'batch*=0.25')"
            )
        tolerances[name] = value
    return tolerances


def metric_policy(
    name: str, tolerances: Optional[Mapping[str, float]] = None
) -> Tuple[str, float]:
    """``(direction, rel_tolerance)`` for a metric name.

    Direction is ``"higher"`` (throughput), ``"lower"`` (wall clock) or
    ``"exact"`` (the deterministic contract; tolerance ignored).
    """
    lowered = name.lower()
    direction = "exact"
    if any(mark in lowered for mark in _THROUGHPUT_MARKS):
        direction = "higher"
    elif (
        any(lowered.endswith(suffix) for suffix in _TIMING_SUFFIXES)
        or any(mark in lowered for mark in _TIMING_MARKS)
    ):
        direction = "lower"
    tolerance = DEFAULT_REL_TOLERANCE
    if tolerances:
        # An exact-name override always beats a glob; among globs the
        # first match in sorted order wins (deterministic).
        matched = None
        if name in tolerances:
            matched = name
        else:
            for pattern in sorted(tolerances):
                if fnmatch.fnmatchcase(name, pattern):
                    matched = pattern
                    break
        if matched is not None:
            tolerance = tolerances[matched]
            if direction == "exact":
                # An explicit tolerance opts a deterministic metric
                # into banded comparison (lower-is-better is the
                # conservative reading for cost-like metrics).
                direction = "lower"
    return direction, tolerance


# Environment keys that legitimately differ between comparable runs:
# the git SHA (the PRs being compared) and the run's own resource usage
# (compared separately, as advisory bands, by _compare_resources).
_ENV_IGNORED_KEYS = frozenset(("git_sha", "resources"))


def _environments_match(base: Optional[dict], current: Optional[dict]) -> bool:
    if base is None or current is None:
        return False
    strip = lambda env: {
        k: v for k, v in env.items() if k not in _ENV_IGNORED_KEYS
    }
    return strip(base) == strip(current)


def _compare_resources(
    report: "ComparisonReport",
    baseline: Artifact,
    current: Artifact,
    tolerances: Optional[Mapping[str, float]],
) -> None:
    """Band-compare the environment ``resources`` blocks (advisory).

    Peak RSS and CPU time are lower-is-better with the default relative
    tolerance (override per metric as ``resources.<name>``).  Excesses
    are **warnings**, never failures: resource usage is measured, not
    contracted, and varies with the host.
    """
    base = (baseline.environment or {}).get("resources")
    cur = (current.environment or {}).get("resources")
    if not isinstance(base, dict) or not isinstance(cur, dict):
        return
    for name in sorted(base):
        base_value, cur_value = base[name], cur.get(name)
        if not (_is_number(base_value) and _is_number(cur_value)):
            continue
        _, tolerance = metric_policy(f"resources.{name}", tolerances)
        change = _relative_change(float(base_value), float(cur_value))
        if change > tolerance:
            report.findings.append(
                Finding(
                    "warning", "<resources>", name, base_value, cur_value,
                    f"{change:+.1%} vs tolerance {tolerance:.0%} "
                    "(resource band is advisory)",
                )
            )
        elif change < -tolerance:
            report.findings.append(
                Finding(
                    "improved", "<resources>", name, base_value, cur_value,
                    f"{change:+.1%}",
                )
            )


def _relative_change(baseline: float, current: float) -> float:
    if baseline == 0:
        return float("inf") if current != 0 else 0.0
    return (current - baseline) / abs(baseline)


def compare_artifacts(
    baseline: Artifact,
    current: Artifact,
    tolerances: Optional[Mapping[str, float]] = None,
    strict_env: bool = False,
) -> ComparisonReport:
    """Diff ``current`` against ``baseline`` row-by-row, metric-by-metric.

    Returns a report whose ``exit_code`` is nonzero when any metric
    regressed (or drifted, for deterministic metrics).  Rows present on
    only one side are warnings, not failures — scenarios legitimately
    grow and shrink between baselines — but two artifacts sharing *no*
    rows are an error (the caller is almost certainly comparing the
    wrong files).
    """
    env_match = _environments_match(baseline.environment, current.environment)
    report = ComparisonReport(
        baseline=baseline,
        current=current,
        environment_matches=env_match,
        compared_rows=0,
        compared_metrics=0,
    )
    if not env_match:
        detail = (
            "environment blocks differ (beyond git_sha); wall-clock metrics "
            "are compared as warnings only"
        )
        if strict_env:
            report.findings.append(
                Finding("drift", "<environment>", "environment", None, None, detail)
            )
        else:
            report.findings.append(
                Finding("warning", "<environment>", "environment", None, None, detail)
            )

    _compare_resources(report, baseline, current, tolerances)

    shared = [key for key in baseline.rows if key in current.rows]
    if not shared:
        raise ParameterError(
            f"no comparable rows between {baseline.path} ({baseline.kind}, "
            f"{len(baseline.rows)} rows) and {current.path} ({current.kind}, "
            f"{len(current.rows)} rows)"
        )
    for key in baseline.rows:
        if key not in current.rows:
            row = baseline.rows[key]
            report.findings.append(
                Finding(
                    "warning", row.label, "<row>", None, None,
                    "present in baseline only",
                )
            )
    for key in current.rows:
        if key not in baseline.rows:
            row = current.rows[key]
            report.findings.append(
                Finding(
                    "warning", row.label, "<row>", None, None,
                    "present in current only",
                )
            )

    for key in shared:
        base_row = baseline.rows[key]
        cur_row = current.rows[key]
        report.compared_rows += 1
        for metric in cur_row.metrics:
            if metric not in base_row.metrics:
                report.findings.append(
                    Finding(
                        "warning", base_row.label, metric, None,
                        cur_row.metrics[metric],
                        "metric missing from baseline artifact",
                    )
                )
        for metric, base_value in base_row.metrics.items():
            if metric not in cur_row.metrics:
                # A vanished metric must not silently pass the gate: the
                # schema change deserves the same visibility as a
                # vanished row.
                report.findings.append(
                    Finding(
                        "warning", base_row.label, metric, base_value, None,
                        "metric missing from current artifact",
                    )
                )
                continue
            cur_value = cur_row.metrics[metric]
            report.compared_metrics += 1
            direction, tolerance = metric_policy(metric, tolerances)
            if not (_is_number(base_value) and _is_number(cur_value)):
                if base_value != cur_value:
                    report.findings.append(
                        Finding(
                            "drift", base_row.label, metric, base_value,
                            cur_value, "non-numeric value changed",
                        )
                    )
                continue
            if direction == "exact":
                if base_value != cur_value:
                    report.findings.append(
                        Finding(
                            "drift", base_row.label, metric, base_value,
                            cur_value,
                            "deterministic metric changed (refresh the "
                            "baseline if this is intentional)",
                        )
                    )
                continue
            change = _relative_change(float(base_value), float(cur_value))
            regressed = (
                change > tolerance if direction == "lower" else change < -tolerance
            )
            improved = (
                change < -tolerance if direction == "lower" else change > tolerance
            )
            if regressed:
                status = "regressed" if env_match else "warning"
                detail = (
                    f"{change:+.1%} vs tolerance {tolerance:.0%}"
                    + ("" if env_match else " (environments differ)")
                )
                report.findings.append(
                    Finding(status, base_row.label, metric, base_value,
                            cur_value, detail)
                )
            elif improved:
                report.findings.append(
                    Finding(
                        "improved", base_row.label, metric, base_value,
                        cur_value, f"{change:+.1%}",
                    )
                )
    return report


def compare_paths(
    baseline_path: pathlib.Path | str,
    current_path: pathlib.Path | str,
    tolerances: Optional[Mapping[str, float]] = None,
    strict_env: bool = False,
) -> ComparisonReport:
    """Load two artifacts from disk and compare them."""
    return compare_artifacts(
        load_artifact(baseline_path),
        load_artifact(current_path),
        tolerances=tolerances,
        strict_env=strict_env,
    )
