"""Content-addressed on-disk cache of trial records.

Every trial's record is stored as one small JSON file addressed by the
trial's content hash (:meth:`TrialSpec.key` — graph spec, seeds,
algorithm, parameters, plus :data:`~repro.experiments.spec.CODE_VERSION`).
Re-running a benchmark therefore skips every already-computed trial, and
growing ``--trials`` only computes the new repetitions: trial seeds are
derived per-index, so trials 0..7 of a 16-trial run are byte-identical
to the 8-trial run that preceded it.

Layout: ``<root>/<key[:2]>/<key>.json`` (fan-out keeps directories
small).  Writes go through a temp file + ``os.replace`` so concurrent
workers can race on the same key harmlessly — last writer wins with
identical content.  Corrupt or version-mismatched files read as misses.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional

from .spec import CODE_VERSION, TrialSpec

__all__ = ["DEFAULT_CACHE_DIR", "ResultCache", "default_cache"]

#: Default cache location, overridable with ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = pathlib.Path(".repro-cache") / "experiments"


def default_cache() -> "ResultCache":
    """The cache at ``$REPRO_CACHE_DIR`` or ``./.repro-cache/experiments``."""
    root = os.environ.get("REPRO_CACHE_DIR")
    return ResultCache(pathlib.Path(root) if root else DEFAULT_CACHE_DIR)


class ResultCache:
    """A content-addressed store of ``trial key -> record`` JSON files."""

    def __init__(self, root: pathlib.Path | str):
        self.root = pathlib.Path(root)

    def path_for(self, key: str) -> pathlib.Path:
        """On-disk location of ``key``'s record."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, trial: TrialSpec) -> Optional[Dict[str, Any]]:
        """The cached record for ``trial``, or ``None`` on a miss."""
        path = self.path_for(trial.key())
        try:
            payload = json.loads(path.read_text(encoding="utf8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("version") != CODE_VERSION:
            return None
        record = payload.get("record")
        return record if isinstance(record, dict) else None

    def put(self, trial: TrialSpec, record: Dict[str, Any]) -> pathlib.Path:
        """Store ``record`` for ``trial``; returns the file written."""
        key = trial.key()
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CODE_VERSION,
            "key": key,
            "trial": trial.content(),
            "record": record,
        }
        # No sort_keys: the record's insertion order is the adapters' column
        # order, and cached trials must render identically to fresh ones.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf8")
        os.replace(tmp, path)
        return path

    def contains(self, trial: TrialSpec) -> bool:
        """Whether a valid record for ``trial`` is on disk."""
        return self.get(trial) is not None

    def __len__(self) -> int:
        """Number of record files currently stored."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
