"""Statistical reduction of trial records into table-ready rows.

The paper's guarantees are probabilistic, so every experiment ends in
"aggregate many seeded trials": mean survivor curves, median round
counts, success *fractions* (``1 − O(1)/c`` events), spread.  This
module reduces the runner's records to exactly that, feeding the
existing :func:`repro.analysis.format_records` renderer.

Group identity comes from the trial specs (graph + parameters — the
experiment point), not from sniffing record columns, so adapters are
free to emit whatever metrics they like.  Within a group:

* constant metrics collapse to a single column (``n``, ``k``, bounds);
* boolean metrics become a success fraction (``*_frac``);
* varying numeric metrics expand to mean / median / max / 95% CI
  half-width (normal approximation) columns;
* list-valued metrics (e.g. survivor curves) are skipped here — they
  have dedicated reducers like :func:`mean_curve`.
"""

from __future__ import annotations

import math
import statistics
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.survival import mean_ragged_curves
from ..errors import ParameterError
from .runner import ExperimentResult

__all__ = [
    "aggregate_experiment",
    "aggregate_trials",
    "confidence_interval",
    "mean_curve",
    "per_trial_rows",
    "quantile",
]


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of ``values`` (``0 <= q <= 1``)."""
    if not values:
        raise ParameterError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ParameterError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    weight = position - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


def confidence_interval(values: Sequence[float], z: float = 1.96) -> float:
    """Half-width of the normal-approximation CI of the mean (default 95%)."""
    if len(values) < 2:
        return 0.0
    return z * statistics.stdev(values) / math.sqrt(len(values))


def mean_curve(curves: Sequence[Sequence[float]]) -> List[float]:
    """Pointwise mean of ragged curves, padded with zeros to the longest.

    Delegates to :func:`repro.analysis.survival.mean_ragged_curves` so the
    Claim 6 aggregation convention has exactly one implementation.
    """
    return mean_ragged_curves(curves)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _metric_names(records: Sequence[Mapping[str, Any]]) -> List[str]:
    """Keys that are numeric or boolean in every record, in first-seen order."""
    names: List[str] = []
    for key in records[0]:
        values = [record.get(key) for record in records]
        if all(_is_number(v) or isinstance(v, bool) for v in values):
            names.append(key)
    return names


def _reduce_metric_columns(
    rows: List[Dict[str, Any]],
    values_per_row: List[List[Any]],
    name: str,
) -> None:
    """Reduce one metric into columns, uniformly across all group rows.

    The column shape (plain value vs ``_frac`` vs mean/med/max/ci95) is
    decided from *every* group together, so each table row carries the
    same columns even when the metric happens to be constant in one
    group and varying in another.
    """
    populated = [values for values in values_per_row if values]
    if not populated:
        return
    all_values = [value for values in populated for value in values]
    if all(isinstance(value, bool) for value in all_values):
        varying = any(len(set(values)) > 1 for values in populated)
        for row, values in zip(rows, values_per_row):
            if not values:
                continue
            if varying:
                row[f"{name}_frac"] = round(sum(values) / len(values), 4)
            else:
                row[name] = values[0]
        return
    varying = any(len({float(v) for v in values}) > 1 for values in populated)
    for row, values in zip(rows, values_per_row):
        if not values:
            continue
        floats = [float(v) for v in values]
        if not varying:
            row[name] = values[0]
        else:
            row[f"{name}_mean"] = round(statistics.fmean(floats), 4)
            row[f"{name}_med"] = round(quantile(floats, 0.5), 4)
            row[f"{name}_max"] = max(floats)
            row[f"{name}_ci95"] = round(confidence_interval(floats), 4)


def aggregate_trials(
    records: Sequence[Mapping[str, Any]],
    group_by: Sequence[str],
    metrics: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Generic reduction: group ``records`` by columns, reduce ``metrics``.

    When ``metrics`` is omitted, every column that is numeric/boolean in
    all records (and not a group column) is reduced.  Group order follows
    first appearance, so output is deterministic for deterministic input.
    """
    if not records:
        return []
    if not group_by:
        raise ParameterError("group_by must name at least one column")
    groups: Dict[Tuple, List[Mapping[str, Any]]] = {}
    for record in records:
        try:
            key = tuple(record[name] for name in group_by)
        except KeyError as exc:
            raise ParameterError(f"record missing group column: {exc}") from exc
        groups.setdefault(key, []).append(record)
    member_lists = list(groups.values())
    rows: List[Dict[str, Any]] = []
    for key, members in groups.items():
        row: Dict[str, Any] = dict(zip(group_by, key))
        row["trials"] = len(members)
        rows.append(row)
    names = (
        list(metrics)
        if metrics is not None
        else [n for n in _metric_names(list(records)) if n not in group_by]
    )
    for name in names:
        _reduce_metric_columns(
            rows,
            [[member[name] for member in members] for members in member_lists],
            name,
        )
    return rows


def _point_key(trial) -> Tuple[str, Tuple]:
    return (trial.graph, trial.params)


def aggregate_experiment(
    result: ExperimentResult,
    metrics: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """One table row per experiment point, metrics reduced across trials.

    Grouping uses trial identity (graph spec + parameters), so two
    points with coincidentally equal records never merge.  Failed trials
    are excluded from the statistics; the ``trials`` column counts the
    successful ones.
    """
    order: List[Tuple[str, Tuple]] = []
    grouped: Dict[Tuple[str, Tuple], List[Mapping[str, Any]]] = {}
    for trial_result in result.results:
        key = _point_key(trial_result.trial)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        if trial_result.record is not None:
            grouped[key].append(trial_result.record)
    rows: List[Dict[str, Any]] = []
    for key in order:
        graph, params = key
        row: Dict[str, Any] = {"graph": graph, **dict(params)}
        row["trials"] = len(grouped[key])
        rows.append(row)
    all_records = [record for key in order for record in grouped[key]]
    if not all_records:
        return rows
    group_columns = set().union(*(dict(params) for _, params in order), {"graph"})
    names = (
        list(metrics)
        if metrics is not None
        else [n for n in _metric_names(all_records) if n not in group_columns]
    )
    for name in names:
        _reduce_metric_columns(
            rows,
            [[member[name] for member in grouped[key]] for key in order],
            name,
        )
    return rows


def per_trial_rows(result: ExperimentResult) -> List[Dict[str, Any]]:
    """One row per trial (scalar record fields only), for ``--per-trial``."""
    rows: List[Dict[str, Any]] = []
    for trial_result in result.results:
        row: Dict[str, Any] = {
            "graph": trial_result.trial.graph,
            "trial": trial_result.trial.index,
        }
        if trial_result.record is None:
            row["error"] = (trial_result.error or "?").splitlines()[0]
        else:
            for name, value in trial_result.record.items():
                if _is_number(value) or isinstance(value, (bool, str)):
                    row[name] = value
        row["cached"] = trial_result.from_cache
        rows.append(row)
    return rows
