"""Named scenario registry: ``bench er-sweep`` instead of a bespoke loop.

A :class:`Scenario` is a declarative experiment template — algorithm,
grid points, default trial count and seeding policy.  Adding a new
comparison workload (a Ghaffari–Portmann-style sweep, a new topology
family, a different ``k`` schedule) is one entry in :data:`SCENARIOS`;
the runner, cache, CLI and aggregation all pick it up for free.

``ExperimentPoint.of("er:256:0.015625", k=6)`` pairs a compact graph
spec with per-point parameter overrides; anything an adapter in
:mod:`~repro.experiments.adapters` understands is a valid parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ParameterError
from .spec import ExperimentPoint, ExperimentSpec

__all__ = [
    "DEFAULT_ROOT_SEED",
    "SCENARIOS",
    "Scenario",
    "build_experiment",
    "get_scenario",
    "scenario_names",
]

#: Root seed shared by scenario defaults — the paper's arXiv date, the
#: same constant the benchmark harness has always used.
DEFAULT_ROOT_SEED = 20160217

_P = ExperimentPoint.of


@dataclass(frozen=True)
class Scenario:
    """A reusable experiment template (see module docstring)."""

    description: str
    algorithm: str
    points: Tuple[ExperimentPoint, ...]
    trials: int = 4
    root_seed: int = DEFAULT_ROOT_SEED
    vary_graph_seed: bool = True

    def spec(
        self,
        name: str,
        trials: Optional[int] = None,
        root_seed: Optional[int] = None,
    ) -> ExperimentSpec:
        """Materialise the template as a concrete :class:`ExperimentSpec`."""
        return ExperimentSpec(
            name=name,
            algorithm=self.algorithm,
            points=self.points,
            trials=self.trials if trials is None else trials,
            root_seed=self.root_seed if root_seed is None else root_seed,
            vary_graph_seed=self.vary_graph_seed,
        )


SCENARIOS: Dict[str, Scenario] = {
    "er-sweep": Scenario(
        description="Theorem 1 quality over a doubling Erdős–Rényi sweep "
        "(k = ceil(ln n), p = 4/n)",
        algorithm="en",
        points=(
            _P("er:64:0.0625", k=5),
            _P("er:128:0.03125", k=5),
            _P("er:256:0.015625", k=6),
            _P("er:512:0.0078125", k=7),
        ),
        trials=4,
    ),
    "grid-vs-tree": Scenario(
        description="Theorem 1 across structured topologies at fixed k=4",
        algorithm="en",
        points=(
            _P("grid:16:16", k=4),
            _P("tree:2:7", k=4),
            _P("cycle:256", k=4),
            _P("hypercube:8", k=4),
        ),
        trials=3,
    ),
    "strong-vs-weak": Scenario(
        description="EN16 vs LS93 on identical inputs: disconnected clusters "
        "and MIS relay overhead (the paper's §1.1 story)",
        algorithm="strong-vs-weak",
        points=(
            _P("er:80:0.05", k=4),
            _P("er:160:0.025", k=4),
        ),
        trials=5,
    ),
    "high-radius": Scenario(
        description="Theorem 3 trade-off: few colours (λ) vs radius growth",
        algorithm="high-radius",
        points=(
            _P("er:200:0.02", lam=2),
            _P("er:200:0.02", lam=3),
            _P("er:200:0.02", lam=4),
        ),
        trials=4,
    ),
    "congest-rounds": Scenario(
        description="Distributed protocol rounds vs O(log² n), with exact "
        "centralized cross-validation (k = ceil(ln n))",
        algorithm="congest",
        points=(
            _P("conn:64:0.03125", k=5),
            _P("conn:128:0.015625", k=5),
            _P("conn:256:0.0078125", k=6),
            _P("conn:512:0.00390625", k=7),
        ),
        trials=1,
        vary_graph_seed=False,
    ),
    "survival": Scenario(
        description="Claim 6 / Corollary 7 survivor curves on one fixed "
        "ER graph, many algorithm seeds",
        algorithm="survival",
        points=(_P("er:200:0.02", k=3, c=4.0),),
        trials=12,
        vary_graph_seed=False,
    ),
    "theorem1": Scenario(
        description="Theorem 1 validation grid: (topology, n, k) vs the "
        "2k−2 and (cn)^{1/k}·ln(cn) bounds",
        algorithm="en",
        points=(
            _P("er:256:0.015625", k=2),
            _P("er:256:0.015625", k=3),
            _P("er:256:0.015625", k=5),
            _P("er:256:0.015625", k=6),
            _P("er:1024:0.00390625", k=2),
            _P("er:1024:0.00390625", k=3),
            _P("er:1024:0.00390625", k=5),
            _P("er:1024:0.00390625", k=7),
            _P("grid:16:16", k=2),
            _P("grid:16:16", k=3),
            _P("grid:16:16", k=5),
            _P("grid:16:16", k=6),
            _P("conn:512:0.004", k=2),
            _P("conn:512:0.004", k=3),
            _P("conn:512:0.004", k=5),
            _P("conn:512:0.004", k=7),
        ),
        trials=1,
        vary_graph_seed=False,
    ),
    "staged-sweep": Scenario(
        description="Theorem 2 staged variant across sparse random and grid "
        "workloads",
        algorithm="staged",
        points=(
            _P("er:128:0.03125", k=3),
            _P("grid:12:12", k=3),
        ),
        trials=3,
    ),
    "ls-baseline": Scenario(
        description="LS93 weak-diameter baseline quality across k",
        algorithm="linial-saks",
        points=(
            _P("er:128:0.03125", k=3),
            _P("er:128:0.03125", k=4),
            _P("er:128:0.03125", k=5),
        ),
        trials=4,
    ),
    "tradeoff-k": Scenario(
        description="Theorem 1 diameter/colour trade-off as k grows on one "
        "workload",
        algorithm="en",
        points=(
            _P("er:256:0.015625", k=2),
            _P("er:256:0.015625", k=3),
            _P("er:256:0.015625", k=4),
            _P("er:256:0.015625", k=6),
            _P("er:256:0.015625", k=8),
        ),
        trials=3,
    ),
    "kernel-scaling": Scenario(
        description="CSR traversal kernel over a doubling BFS-dominated "
        "sweep (structural checksums; wall-clock lives in "
        "benchmarks/bench_kernel.py)",
        algorithm="kernel",
        points=(
            _P("torus:16:16"),
            _P("torus:32:32"),
            _P("torus:64:64"),
            _P("regular:1024:8"),
            _P("regular:4096:8"),
            _P("ws:4096:8:0.05"),
        ),
        trials=2,
    ),
    "engine-scaling": Scenario(
        description="Batch round-engine over a doubling sweep: distributed "
        "EN on backend='batch' with deterministic structural checksums, "
        "cross-validated against SyncNetwork at the small points "
        "(wall-clock lives in benchmarks/bench_engine.py)",
        algorithm="engine",
        points=(
            _P("conn:96:0.02", k=4, compare="sync"),
            _P("gnp_fast:256:0.03", k=5, compare="sync"),
            _P("torus:32:32", k=6),
            _P("gnp_fast:4096:0.0015", k=7),
            _P("regular:4096:6", k=7),
        ),
        trials=2,
    ),
    "oracle-scaling": Scenario(
        description="Hierarchical cover oracle over a doubling sweep: "
        "multi-scale build + seeded query batch with deterministic "
        "checksums and exact-BFS stretch validation on a sampled subset "
        "(wall-clock lives in benchmarks/bench_oracle.py)",
        algorithm="oracle",
        points=(
            _P("gnp_fast:256:0.03", queries=1024, check=64),
            _P("gnp_fast:1024:0.008", queries=2048, check=48),
            _P("torus:32:32", queries=2048, check=48),
            _P("regular:2048:6", queries=2048, check=32),
            _P("ws:1024:6:0.05", queries=1024, check=32),
        ),
        trials=2,
    ),
    "robustness": Scenario(
        description="Adversarial execution: distributed EN on the async "
        "engine under delay schedules and seeded fault plans, with a "
        "sync-reference match bit (fault-free legs must match; faulted "
        "legs measure drift — see docs/async.md)",
        algorithm="robustness",
        points=(
            _P("er:64:0.0625", algo="en", k=4, delivery="fifo"),
            _P("er:64:0.0625", algo="en", k=4, delivery="latest:3"),
            _P("er:64:0.0625", algo="en", k=4, delivery="random:4"),
            _P("er:64:0.0625", algo="en", k=4, delivery="starve:3:0.5"),
            _P(
                "er:64:0.0625",
                algo="en",
                k=4,
                delivery="random:2",
                faults="drop:0.05",
            ),
            _P(
                "er:64:0.0625",
                algo="en",
                k=4,
                delivery="fifo",
                faults="crash:5@2-9;crash:11@4-7;redeliver",
            ),
        ),
        trials=3,
    ),
    "serving": Scenario(
        description="Oracle-as-a-service loopback: in-process serve daemon "
        "answering micro-batched distance/route requests row-identical to "
        "direct oracle.query, with deterministic batch and cache counters "
        "(latency/saturation live in benchmarks/bench_serving.py)",
        algorithm="serving",
        points=(
            _P("gnp_fast:256:0.03", queries=192, max_batch=32, cache=256),
            _P("torus:24:24", queries=192, max_batch=32, cache=64),
            _P("gnp_fast:1024:0.008", queries=256, max_batch=64, cache=0),
        ),
        trials=2,
    ),
    "smoke": Scenario(
        description="Tiny end-to-end exercise of the runtime (CI smoke test)",
        algorithm="en",
        points=(_P("er:24:0.2", k=3),),
        trials=2,
    ),
}


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    """Look up ``name`` or raise :class:`ParameterError` with suggestions."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ParameterError(
            f"unknown scenario {name!r} (try one of: {', '.join(scenario_names())})"
        ) from None


def build_experiment(
    name: str,
    trials: Optional[int] = None,
    root_seed: Optional[int] = None,
) -> ExperimentSpec:
    """Materialise scenario ``name`` with optional trial/seed overrides."""
    return get_scenario(name).spec(name, trials=trials, root_seed=root_seed)
