"""Critical-path extraction over a causal log.

Consumes the ``"causal"`` records of :mod:`repro.telemetry.causality`
and answers the question the round counter cannot: *which chain of
message dependencies forces a run to take the rounds (and the wall
time) it takes* — and where an adversarial schedule actually injected
its delay.

The model: each node's participation in a round is one event.  An
event's **time** is its α-synchronizer ready time when the log carries
timing extras (adversarial async runs) and the round number otherwise,
so sync/batch/fault-free-FIFO logs yield ``time == rounds`` exactly.
The **critical path** of a run ends at the latest halt event and walks
causal predecessors backwards: at each event the binding constraint is
either the latest-arriving incoming message (the synchronizer literally
waits for it) or the node's own previous event.  Each backward step is
attributed:

* ``transit``  — the one synchronous hop every delivered edge costs;
* ``delay``    — extra time the delivery schedule added on top of the
  hop (``arrive − send_time − 1``);
* ``fault``    — rounds an edge spent buffered by a crash window
  (redelivery edges);
* ``compute``  — waiting on the node's own previous round (local
  edges, e.g. the decide→halt step of EN's phase tail).

**Slack** of an edge is ``recv_time − arrive``: how much later the
message could have arrived without the receiver's ready time moving —
the first-order answer to "could the adversary have delayed this
message for free?".

The headline invariant (pinned by tests and the CI robustness smoke):
on fault-free FIFO runs the critical path's ``rounds`` equals the
driver's reported round count for EN/LS/MPX on every backend, and its
``drift`` (``time − rounds``) is zero; under adversarial schedules the
drift is exactly the schedule's accumulated inflation.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Mapping

from .causality import causal_records, causal_streams

__all__ = ["critical_path", "lag_timeline", "node_lag", "slack_stats"]


def _num(value: float):
    if value == int(value):
        return int(value)
    return round(value, 6)


class _EventIndex:
    """Receive/halt events of one stream, with ready-time lookups."""

    def __init__(self, rows: list[dict]) -> None:
        self.msg_rows = [row for row in rows if row["edge"] == "msg"]
        self.extras = any("recv_time" in row for row in self.msg_rows)
        #: (recv, recv_round) -> incoming edge rows
        self.incoming: dict[tuple[int, int], list[dict]] = {}
        #: node -> ascending receive rounds
        self.recv_rounds: dict[int, list[int]] = {}
        #: node -> prefix-max of (recv_time - round), parallel to recv_rounds
        self._lag: dict[int, list[float]] = {}
        #: node -> halt round
        self.halt_round: dict[int, int] = {}
        for row in rows:
            if row["edge"] == "halt":
                node, halt = row["node"], row["round"]
                if halt > self.halt_round.get(node, -1):
                    self.halt_round[node] = halt
        by_node: dict[int, dict[int, float]] = {}
        for row in self.msg_rows:
            key = (row["recv"], row["recv_round"])
            self.incoming.setdefault(key, []).append(row)
            lags = by_node.setdefault(row["recv"], {})
            lag = float(row.get("recv_time", row["recv_round"])) - row["recv_round"]
            if lag > lags.get(row["recv_round"], -1.0):
                lags[row["recv_round"]] = lag
        for node, lags in by_node.items():
            rounds = sorted(lags)
            prefix: list[float] = []
            running = 0.0
            for round_number in rounds:
                running = max(running, lags[round_number])
                prefix.append(running)
            self.recv_rounds[node] = rounds
            self._lag[node] = prefix

    def event_time(self, node: int, round_number: int) -> float:
        """Ready time of ``node``'s round-``round_number`` event.

        ``round_number`` plus the worst lag among the node's receives up
        to that round — a node that once waited on a late message stays
        late until rounds catch up (its virtual clock advances one per
        pulse from the inflated point).
        """
        rounds = self.recv_rounds.get(node)
        if not rounds:
            return float(round_number)
        index = bisect_right(rounds, round_number)
        if not index:
            return float(round_number)
        return round_number + max(self._lag[node][index - 1], 0.0)

    def previous_round(self, node: int, round_number: int) -> "int | None":
        """The node's latest receive round strictly before ``round_number``."""
        rounds = self.recv_rounds.get(node)
        if not rounds:
            return None
        index = bisect_left(rounds, round_number)
        return rounds[index - 1] if index else None

    def latest_round(self, node: int, round_number: int) -> "int | None":
        """The node's latest receive round at or before ``round_number``."""
        rounds = self.recv_rounds.get(node)
        if not rounds:
            return None
        index = bisect_right(rounds, round_number)
        return rounds[index - 1] if index else None


def _one_stream(records: Iterable[Mapping], stream: "str | None") -> tuple[str, list[dict]]:
    rows = causal_records(records, stream)
    if not rows:
        raise ValueError(
            "no causal records"
            + (f" for stream {stream!r}" if stream is not None else "")
            + " — was the run traced?"
        )
    streams = causal_streams(rows)
    if len(streams) > 1:
        raise ValueError(
            f"causal log mixes streams {streams}; pass stream= to pick one"
        )
    return streams[0], rows


def critical_path(
    records: Iterable[Mapping],
    stream: "str | None" = None,
    node: "int | None" = None,
) -> dict:
    """The longest dependency chain ending at a halt (module docstring).

    ``node`` pins the chain to that node's halt (default: the latest
    halt in the log — ties broken toward the smallest node id).
    Returns rounds/time/drift plus the attributed ``chain`` and the
    stream-wide ``slack`` summary.
    """
    name, rows = _one_stream(records, stream)
    index = _EventIndex(rows)
    halted = True
    if node is not None:
        end_node = node
        if node in index.halt_round:
            end_round = index.halt_round[node]
        else:
            last = index.latest_round(node, 1 << 62)
            if last is None:
                raise ValueError(f"node {node} has no events in the causal log")
            end_round, halted = last, False
    elif index.halt_round:
        end_node, end_round, _time = min(
            (
                (candidate, halt, index.event_time(candidate, halt))
                for candidate, halt in index.halt_round.items()
            ),
            key=lambda item: (-item[2], -item[1], item[0]),
        )
    else:
        # A log with no halts (e.g. an aborted run): end at the latest
        # receive event instead, latest time first, smallest node on ties.
        halted = False
        end_node, end_round = min(
            (
                (candidate, rounds[-1])
                for candidate, rounds in index.recv_rounds.items()
            ),
            key=lambda item: (
                -index.event_time(item[0], item[1]),
                -item[1],
                item[0],
            ),
        )
    end_time = index.event_time(end_node, end_round)

    chain: list[dict] = []
    attribution = {"transit": 0.0, "delay": 0.0, "fault": 0.0, "compute": 0.0}
    current_node, current_round = end_node, end_round
    while True:
        incoming = index.incoming.get((current_node, current_round), ())
        previous = index.previous_round(current_node, current_round)
        binding = None
        if incoming:
            binding = max(
                incoming,
                key=lambda row: (
                    row.get("arrive", row["send_round"] + 1),
                    -row["send"],
                ),
            )
            binding_time = float(binding.get("arrive", binding["send_round"] + 1))
            if binding_time == 0.0:
                # Redelivery sentinel: the edge was released *at* this
                # pulse, so it binds like an on-time arrival.
                binding_time = float(current_round)
        if binding is not None and (
            previous is None
            or binding_time >= index.event_time(current_node, previous)
        ):
            fault = int(binding.get("fault", 0))
            if fault:
                delay = 0.0
                fault_rounds = float(
                    max(current_round - binding["send_round"] - 1, 0)
                )
            else:
                fault_rounds = 0.0
                delay = max(
                    float(binding.get("arrive", binding["send_round"] + 1))
                    - float(binding.get("send_time", binding["send_round"]))
                    - 1.0,
                    0.0,
                )
            chain.append(
                {
                    "edge": "msg",
                    "send": binding["send"],
                    "send_round": binding["send_round"],
                    "recv": current_node,
                    "recv_round": current_round,
                    "transit": 1,
                    "delay": _num(delay),
                    "fault": _num(fault_rounds),
                }
            )
            attribution["transit"] += 1.0
            attribution["delay"] += delay
            attribution["fault"] += fault_rounds
            parent = index.latest_round(binding["send"], binding["send_round"])
            if parent is None:
                break  # the chain reached a protocol start
            current_node, current_round = binding["send"], parent
        elif previous is not None:
            compute = index.event_time(current_node, current_round) - index.event_time(
                current_node, previous
            )
            chain.append(
                {
                    "edge": "local",
                    "node": current_node,
                    "from_round": previous,
                    "to_round": current_round,
                    "compute": _num(compute),
                }
            )
            attribution["compute"] += compute
            current_round = previous
        else:
            break
    chain.reverse()
    return {
        "stream": name,
        "node": end_node,
        "halted": halted,
        "rounds": end_round,
        "time": _num(end_time),
        "drift": _num(end_time - end_round),
        "halts": len(index.halt_round),
        "edges": len(index.msg_rows),
        "chain": chain,
        "attribution": {key: _num(value) for key, value in attribution.items()},
        "slack": slack_stats(rows),
    }


def slack_stats(records: Iterable[Mapping], stream: "str | None" = None) -> dict:
    """Stream-wide slack summary: ``recv_time − arrive`` per edge.

    An edge's slack is how much later it could have arrived without its
    receiver's ready time moving.  Fault (redelivery) edges carry no
    meaningful arrival and are excluded.  Logs without timing extras
    (sync/batch/fault-free FIFO) are all-zero by construction.
    """
    rows = [
        row
        for row in causal_records(records, stream)
        if row["edge"] == "msg" and not row.get("fault", 0)
    ]
    slacks = [
        max(
            float(row.get("recv_time", row["recv_round"]))
            - float(row.get("arrive", row["recv_round"])),
            0.0,
        )
        for row in rows
    ]
    if not slacks:
        return {"edges": 0, "min": 0, "mean": 0, "max": 0}
    return {
        "edges": len(slacks),
        "min": _num(min(slacks)),
        "mean": _num(round(sum(slacks) / len(slacks), 6)),
        "max": _num(max(slacks)),
    }


def lag_timeline(records: Iterable[Mapping], stream: "str | None" = None) -> list[dict]:
    """Per-round lag/skew rows: where the adversary bent the timeline.

    One row per delivery round — edges, delivered messages, halts, the
    worst per-node lag (``recv_time − round``) and the within-round
    skew (spread of ready times).  Without timing extras the lag and
    skew columns are zero and the table reduces to a delivery census.
    """
    rows = causal_records(records, stream)
    by_round: dict[int, dict] = {}
    for row in rows:
        if row["edge"] == "halt":
            entry = by_round.setdefault(
                row["round"], {"edges": 0, "messages": 0, "halts": 0, "times": []}
            )
            entry["halts"] += 1
            continue
        entry = by_round.setdefault(
            row["recv_round"], {"edges": 0, "messages": 0, "halts": 0, "times": []}
        )
        entry["edges"] += 1
        entry["messages"] += row.get("count", 1)
        entry["times"].append(float(row.get("recv_time", row["recv_round"])))
    timeline = []
    for round_number in sorted(by_round):
        entry = by_round[round_number]
        times = entry["times"]
        lag = max((time - round_number for time in times), default=0.0)
        skew = (max(times) - min(times)) if times else 0.0
        timeline.append(
            {
                "round": round_number,
                "edges": entry["edges"],
                "messages": entry["messages"],
                "halts": entry["halts"],
                "lag": _num(max(lag, 0.0)),
                "skew": _num(skew),
            }
        )
    return timeline


def node_lag(records: Iterable[Mapping], stream: "str | None" = None) -> list[dict]:
    """Per-node lag rows: events, halt round, worst ready-time lag."""
    rows = causal_records(records, stream)
    index = _EventIndex(rows)
    nodes = sorted(set(index.recv_rounds) | set(index.halt_round))
    table = []
    for node in nodes:
        rounds = index.recv_rounds.get(node, [])
        worst = max(index._lag[node]) if node in index._lag else 0.0
        table.append(
            {
                "node": node,
                "events": len(rounds),
                "last_round": rounds[-1] if rounds else index.halt_round.get(node, 0),
                "halt_round": index.halt_round.get(node),
                "max_lag": _num(max(worst, 0.0)),
            }
        )
    return table
