"""Per-message event tracing (the absorbed ``TraceRecorder``).

This is the canonical home of the simulator's send/halt event stream,
previously ``repro.distributed.tracing`` (which now re-exports these
names for compatibility).  An :class:`EventRecorder` attaches to either
engine — ``SyncNetwork(tracer=...)`` or ``BatchEngine(..., tracer=...)``
— and records the identical, bit-for-bit event stream both produce
(pinned by ``tests/engine/test_congest_tracing.py``).

Within the telemetry layer the recorder is *one subscriber* of the
engine hooks, alongside the aggregated
:class:`~repro.telemetry.rounds.RoundStream`; bind it to a
:class:`~repro.telemetry.core.Telemetry` object (``telemetry=``) and
every kept event is additionally mirrored to the telemetry sink as a
``{"kind": "event"}`` record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .core import Telemetry

__all__ = ["TraceEvent", "EventRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One traced event.

    ``kind`` is ``"send"`` (payload = message payload) or ``"halt"``
    (payload = ``None``); ``round`` is the round in which it happened.
    """

    round: int
    kind: str
    node: int
    peer: int | None
    payload: Any


@dataclass
class EventRecorder:
    """Bounded in-memory event recorder (the engines' ``tracer=``).

    Parameters
    ----------
    limit:
        Maximum number of events kept; older events are *not* evicted —
        recording simply stops (and ``truncated`` flips) so that traces
        always describe a prefix of the run.
    node_filter:
        Optional predicate on node id; events from other nodes are
        dropped.
    telemetry:
        Optional :class:`~repro.telemetry.core.Telemetry` to mirror
        kept events into (as ``{"kind": "event"}`` sink records).
    """

    limit: int = 100_000
    node_filter: Callable[[int], bool] | None = None
    events: list[TraceEvent] = field(default_factory=list)
    truncated: bool = False
    telemetry: "Telemetry | None" = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Hooks called by the engine
    # ------------------------------------------------------------------
    def on_send(self, message) -> None:
        """Record a message send (duck-typed over :class:`Message`)."""
        if self.node_filter is not None and not self.node_filter(message.sender):
            return
        self._append(
            TraceEvent(
                round=message.sent_round,
                kind="send",
                node=message.sender,
                peer=message.receiver,
                payload=message.payload,
            )
        )

    def on_halt(self, node: int, round_number: int) -> None:
        """Record a node halting."""
        if self.node_filter is not None and not self.node_filter(node):
            return
        self._append(
            TraceEvent(round=round_number, kind="halt", node=node, peer=None, payload=None)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sends(self) -> Iterator[TraceEvent]:
        """All recorded send events, in order."""
        return (event for event in self.events if event.kind == "send")

    def halts(self) -> Iterator[TraceEvent]:
        """All recorded halt events, in order."""
        return (event for event in self.events if event.kind == "halt")

    def rounds(self) -> dict[int, list[TraceEvent]]:
        """Events grouped by round."""
        grouped: dict[int, list[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.round, []).append(event)
        return grouped

    def messages_between(self, a: int, b: int) -> list[TraceEvent]:
        """Send events on the (directed both ways) edge ``{a, b}``."""
        return [
            event
            for event in self.sends()
            if {event.node, event.peer} == {a, b}
        ]

    def _append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.limit:
            self.truncated = True
            return
        self.events.append(event)
        if self.telemetry is not None:
            self.telemetry.record_event(event)
