"""Causal message provenance: the parent-edge log under critical paths.

A :class:`CausalLog` subscribes to an engine the same way a
:class:`~repro.telemetry.rounds.RoundStream` does —
``SyncNetwork(causal=...)``, ``AsyncNetwork(causal=...)`` or
``BatchEngine(..., causal=...)`` — and records *who caused what*: one
compact ``"causal"`` record per delivered parent edge, aggregated per
``(send, send_round, recv, recv_round)``, plus one record per halt
event.  Two record shapes share the stream:

* ``edge="msg"`` — ``count`` messages from ``send`` (sent in round
  ``send_round``) were delivered to ``recv`` at the start of round
  ``recv_round``;
* ``edge="halt"`` — ``node`` halted at the end of round ``round``.

The log is the *provenance half* of the telemetry layer's round
contract: the sync engine emits edges per receiver in ascending-id
order with sender-sorted inboxes, and the batch engine derives the same
edges from its per-(vertex, origin) broadcast columns, so fault-free
runs of the two backends produce **row-identical** causal logs
(``tests/telemetry/test_causality.py``).  The async engine emits edges
in arrival order, which degenerates to the sync order under the FIFO
schedule with no faults — and on adversarial runs it extends each edge
with timing *extras* (gated exactly like the round stream's adversary
columns, so fault-free FIFO logs stay bit-comparable):

* ``send_time`` — the sender's virtual clock when the message left;
* ``arrive`` — the arrival time the delivery schedule assigned
  (``0`` marks a fault edge: the message sat in a redelivery buffer
  while its receiver was crashed);
* ``recv_time`` — the receiver's α-synchronizer ready time for the
  delivery pulse;
* ``fault`` — rounds the message spent buffered by a crash window.

:func:`lamport_timestamps` derives logical clocks from the log alone:
the Lamport clock of an event is one more than the maximum clock among
its causal predecessors (the node's previous event and, for each
incoming edge, the sender's latest event at or before the send round).
Because the clocks are a pure function of the *edge multiset grouped by
round*, they are invariant under any delivery permutation — the
property ``tests/distributed/test_schedule_properties.py`` pins across
all adversarial schedules.

Everything downstream — critical-path extraction, per-edge delay
attribution, slack — lives in :mod:`repro.telemetry.critical`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Telemetry

__all__ = ["CausalLog", "causal_records", "causal_streams", "lamport_timestamps"]


def _num(value: float):
    """Canonical JSON number: ints stay ints, floats round to 6 places."""
    if value == int(value):
        return int(value)
    return round(value, 6)


class CausalLog:
    """One protocol run's parent-edge log (see module docstring)."""

    __slots__ = ("stream", "records", "_telemetry", "_extras")

    def __init__(self, telemetry: "Telemetry", stream: str) -> None:
        self.stream = stream
        self.records: list[dict] = []
        self._telemetry = telemetry
        self._extras = False

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def enable_extras(self) -> None:
        """Extend edge records with the async timing columns.

        Enabled only on runs where a non-FIFO schedule or a fault plan
        is active — the same gate the round stream's adversary columns
        use, so fault-free FIFO logs stay row-identical to the sync
        engine's.
        """
        self._extras = True

    @property
    def extras_enabled(self) -> bool:
        return self._extras

    def message(
        self,
        send: int,
        send_round: int,
        recv: int,
        recv_round: int,
        count: int = 1,
        *,
        send_time: float | None = None,
        arrive: float | None = None,
        recv_time: float | None = None,
        fault: int = 0,
    ) -> None:
        """Record ``count`` delivered messages along one parent edge."""
        record = {
            "kind": "causal",
            "stream": self.stream,
            "edge": "msg",
            "send": send,
            "send_round": send_round,
            "recv": recv,
            "recv_round": recv_round,
            "count": count,
        }
        if self._extras:
            record["send_time"] = _num(send_time if send_time is not None else send_round)
            record["arrive"] = _num(arrive if arrive is not None else recv_round)
            record["recv_time"] = _num(recv_time if recv_time is not None else recv_round)
            record["fault"] = fault
        self._keep(record)

    def halt(self, node: int, round_number: int) -> None:
        """Record that ``node`` halted at the end of ``round_number``."""
        self._keep(
            {
                "kind": "causal",
                "stream": self.stream,
                "edge": "halt",
                "node": node,
                "round": round_number,
            }
        )

    def _keep(self, record: dict) -> None:
        # Same dual landing as round records: the per-stream view feeds
        # the cross-backend identity checks, the shared collector feeds
        # trace files and artifact blocks; both respect the bound.
        telemetry = self._telemetry
        if len(self.records) < telemetry.limit:
            self.records.append(record)
        else:
            telemetry.truncated = True
        telemetry._keep(telemetry.causal, record)


# --------------------------------------------------------------------------
# Log readers


def causal_records(
    records: Iterable[Mapping], stream: "str | None" = None
) -> list[dict]:
    """The ``"causal"`` records of a trace, optionally one stream's."""
    return [
        dict(record)
        for record in records
        if record.get("kind") == "causal"
        and (stream is None or record.get("stream") == stream)
    ]


def causal_streams(records: Iterable[Mapping]) -> list[str]:
    """Distinct causal stream names, in first-appearance order."""
    seen: dict[str, None] = {}
    for record in records:
        if record.get("kind") == "causal":
            seen.setdefault(str(record.get("stream")), None)
    return list(seen)


def lamport_timestamps(
    records: Iterable[Mapping], stream: "str | None" = None
) -> dict[tuple[int, int], int]:
    """Lamport clocks for every logged event, keyed ``(node, round)``.

    An *event* is one node's participation in one round: receiving its
    inbox, halting, or both (a halt merges with the same round's
    receive).  Clocks are the causal height over the edge log —
    ``1 + max`` over the node's previous event and, per incoming edge,
    the sender's latest event at or before the send round (``0`` when a
    predecessor has no logged event: protocol starts are height zero).

    Pure function of the edge multiset grouped by round: permuting the
    delivery order inside any round — what adversarial schedules do —
    cannot change the result.
    """
    rows = causal_records(records, stream)
    edges_by_round: dict[int, list[dict]] = {}
    halts_by_round: dict[int, list[int]] = {}
    for row in rows:
        if row["edge"] == "msg":
            edges_by_round.setdefault(row["recv_round"], []).append(row)
        else:
            halts_by_round.setdefault(row["round"], []).append(row["node"])
    clocks: dict[tuple[int, int], int] = {}
    # Per-node event history as parallel (rounds, clocks) lists so the
    # "latest event at or before round r" lookup is a bisect.
    history_rounds: dict[int, list[int]] = {}
    history_clocks: dict[int, list[int]] = {}

    def latest(node: int, upto: int) -> int:
        rounds = history_rounds.get(node)
        if not rounds:
            return 0
        index = bisect_right(rounds, upto)
        return history_clocks[node][index - 1] if index else 0

    for round_number in sorted(set(edges_by_round) | set(halts_by_round)):
        incoming: dict[int, int] = {}
        for row in edges_by_round.get(round_number, ()):
            parent = latest(row["send"], row["send_round"])
            if parent > incoming.get(row["recv"], -1):
                incoming[row["recv"]] = parent
        nodes = set(incoming)
        nodes.update(halts_by_round.get(round_number, ()))
        for node in sorted(nodes):
            clock = 1 + max(latest(node, round_number - 1), incoming.get(node, 0))
            clocks[(node, round_number)] = clock
            history_rounds.setdefault(node, []).append(round_number)
            history_clocks.setdefault(node, []).append(clock)
    return clocks
