"""Mergeable log-bucketed latency histograms (HDR-style).

A :class:`LogHistogram` counts samples in buckets whose boundaries are a
deterministic function of two parameters and nothing else::

    upper(0) = min_value                       # bucket 0: [0, min_value]
    upper(i) = min_value * 2 ** (i / buckets_per_octave)   # (upper(i-1), upper(i)]

Because boundaries never depend on the data, two histograms recorded on
different shards (or trials, or processes) combine *exactly*:
:meth:`LogHistogram.merge` is plain bucket-count addition, hence
associative and commutative, and the quantiles of a merged histogram
equal the quantiles of the concatenated samples up to one bucket width.
That error bound is the design contract — :meth:`quantile` returns the
upper boundary of the bucket holding the requested rank, so it can
overshoot the exact order statistic by at most
:meth:`bucket_width` at that value (pinned by
``tests/telemetry/test_hist.py``).

The default resolution (8 buckets per octave, ``min_value`` 100 ns)
gives ~9% relative quantile error over 13 decades of latency in at most
a few hundred occupied buckets — the standard HDR trade-off.

Serialization (:meth:`to_dict` / :meth:`from_dict`) is lossless and
byte-stable: a round-trip through JSON reproduces the dictionary
exactly, so trace files and campaign artifacts can carry histograms
that remain mergeable after the fact.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from ..errors import ParameterError

__all__ = ["HIST_SCHEMA", "LogHistogram", "merge_all"]

#: Schema tag stamped into serialized histograms.
HIST_SCHEMA = "en16.hist.v1"

#: Default bucket-0 upper bound: 100 ns, below the resolution of any
#: wall-clock interval this library measures.
DEFAULT_MIN_VALUE = 1e-7

#: Default resolution: 8 buckets per power of two (~9% bucket width).
DEFAULT_BUCKETS_PER_OCTAVE = 8


class LogHistogram:
    """One mergeable histogram of non-negative values (see module doc)."""

    __slots__ = ("min_value", "buckets_per_octave", "counts", "count", "vmin", "vmax")

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        buckets_per_octave: int = DEFAULT_BUCKETS_PER_OCTAVE,
    ) -> None:
        if not min_value > 0:
            raise ParameterError(f"min_value must be > 0, got {min_value}")
        if buckets_per_octave < 1:
            raise ParameterError(
                f"buckets_per_octave must be >= 1, got {buckets_per_octave}"
            )
        self.min_value = float(min_value)
        self.buckets_per_octave = int(buckets_per_octave)
        self.counts: dict[int, int] = {}
        self.count = 0
        self.vmin: float | None = None
        self.vmax: float | None = None

    # ------------------------------------------------------------------
    # Bucket geometry (pure functions of the two parameters)
    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The bucket holding ``value`` (values must be >= 0)."""
        if value < 0:
            raise ParameterError(f"histogram values must be >= 0, got {value}")
        if value <= self.min_value:
            return 0
        return max(
            1,
            math.ceil(math.log2(value / self.min_value) * self.buckets_per_octave),
        )

    def bucket_upper(self, index: int) -> float:
        """Upper boundary of bucket ``index`` (inclusive)."""
        if index <= 0:
            return self.min_value
        return self.min_value * 2.0 ** (index / self.buckets_per_octave)

    def bucket_width(self, value: float) -> float:
        """Width of the bucket holding ``value`` — the quantile error bound."""
        index = self.bucket_index(value)
        lower = 0.0 if index == 0 else self.bucket_upper(index - 1)
        return self.bucket_upper(index) - lower

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Count one sample."""
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        value = float(value)
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value

    def compatible(self, other: "LogHistogram") -> bool:
        """Whether ``other`` shares this histogram's bucket boundaries."""
        return (
            self.min_value == other.min_value
            and self.buckets_per_octave == other.buckets_per_octave
        )

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """A new histogram counting both inputs' samples.

        Pure integer bucket addition (min/max fold exactly too), so the
        operation is associative and commutative — shard results combine
        in any order to the same histogram.
        """
        if not self.compatible(other):
            raise ParameterError(
                "cannot merge histograms with different bucket boundaries: "
                f"(min_value={self.min_value}, octave={self.buckets_per_octave}) vs "
                f"(min_value={other.min_value}, octave={other.buckets_per_octave})"
            )
        merged = LogHistogram(self.min_value, self.buckets_per_octave)
        merged.count = self.count + other.count
        counts = dict(self.counts)
        for index, count in other.counts.items():
            counts[index] = counts.get(index, 0) + count
        merged.counts = counts
        mins = [v for v in (self.vmin, other.vmin) if v is not None]
        maxs = [v for v in (self.vmax, other.vmax) if v is not None]
        merged.vmin = min(mins) if mins else None
        merged.vmax = max(maxs) if maxs else None
        return merged

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float | None:
        """The upper bound of the bucket holding the rank-``q`` sample.

        ``None`` when empty.  Overestimates the exact order statistic by
        less than :meth:`bucket_width` at the returned value.
        """
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if seen >= rank:
                return self.bucket_upper(index)
        return self.bucket_upper(max(self.counts))  # pragma: no cover - unreachable

    def summary(self) -> dict:
        """The compact ``{count, min, max, p50, p90, p99}`` block."""
        return {
            "count": self.count,
            "min": self.vmin,
            "max": self.vmax,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    # ------------------------------------------------------------------
    # Serialization (lossless, byte-stable through JSON)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The full lossless payload (counts per bucket, sorted keys)."""
        return {
            "schema": HIST_SCHEMA,
            "min_value": self.min_value,
            "buckets_per_octave": self.buckets_per_octave,
            "count": self.count,
            "min": self.vmin,
            "max": self.vmax,
            "counts": {str(index): self.counts[index] for index in sorted(self.counts)},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "LogHistogram":
        """Rebuild a histogram serialized by :meth:`to_dict`."""
        if payload.get("schema") != HIST_SCHEMA:
            raise ParameterError(
                f"unsupported histogram schema {payload.get('schema')!r} "
                f"(expected {HIST_SCHEMA!r})"
            )
        hist = cls(
            min_value=payload["min_value"],
            buckets_per_octave=payload["buckets_per_octave"],
        )
        hist.count = int(payload.get("count", 0))
        hist.vmin = payload.get("min")
        hist.vmax = payload.get("max")
        hist.counts = {
            int(index): int(count)
            for index, count in (payload.get("counts") or {}).items()
        }
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(count={self.count}, p50={self.quantile(0.5)}, "
            f"p99={self.quantile(0.99)})"
        )


def merge_all(histograms: Iterable[LogHistogram]) -> LogHistogram | None:
    """Fold any number of compatible histograms (``None`` for none)."""
    merged: LogHistogram | None = None
    for hist in histograms:
        merged = hist if merged is None else merged.merge(hist)
    return merged
