"""Unified observability layer: spans, round streams, trace sinks.

Everything the library knows how to *measure* about itself flows through
this package — it is the shared substrate under the engine's
:class:`~repro.distributed.metrics.NetworkStats`, the oracle's build
timings and the campaign runtime's per-trial accounting:

* **hierarchical spans** (:class:`~repro.telemetry.core.Span`) carry
  wall time, counters and structured attributes, nested by lexical
  scope (``span("oracle.build") > span("scale") > span("carve")``);
* **round streams** (:class:`~repro.telemetry.rounds.RoundStream`)
  record one identically-keyed metrics row per protocol round —
  frontier size, live nodes, messages, words, deliveries, halts — from
  *both* execution backends, so sync and batch runs stay
  cross-checkable row by row;
* **causal logs** (:class:`~repro.telemetry.causality.CausalLog`):
  per-message parent edges ``(send, send_round, recv, recv_round)``
  recorded uniformly at all three delivery sites, feeding Lamport
  clocks, critical-path extraction and slack analysis
  (:mod:`repro.telemetry.critical`, ``repro trace critical-path``);
* **sinks**: every record lands in the in-memory collector on the
  :class:`~repro.telemetry.core.Telemetry` object and, optionally, in a
  bounded append-only JSONL file
  (:class:`~repro.telemetry.sink.JsonlSink`) that is schema-versioned
  and torn-tail tolerant like the campaign journal;
* the legacy :class:`~repro.telemetry.events.EventRecorder` (né
  ``TraceRecorder``) remains available as a per-message compatibility
  subscriber of the same engines;
* **histograms** (:class:`~repro.telemetry.hist.LogHistogram`):
  mergeable log-bucketed latency distributions with deterministic
  boundaries — round streams feed per-round wall time into them and the
  oracle's batched query path feeds per-batch latency, and shard/trial
  histograms combine exactly;
* **profiling** (:class:`~repro.telemetry.profile.SamplingProfiler`):
  a stdlib sampling profiler attributing stack samples to the open span
  path, opt-in via ``--profile`` / ``REPRO_PROFILE``;
* **resources** (:mod:`repro.telemetry.resources`): RSS / CPU / GC /
  tracemalloc snapshots annotated onto trial spans and artifact
  environment blocks;
* **export** (:func:`~repro.telemetry.export.chrome_trace`): lossless
  conversion of a trace into Chrome trace-event JSON
  (``repro trace export``), loadable in Perfetto.

The layer is **opt-in**.  Nothing is recorded unless the caller passes
a :class:`Telemetry` object, the process called :func:`configure` (the
CLI's ``--trace`` flag), or the environment sets
``REPRO_TELEMETRY=mem|<path>.jsonl`` (``off`` — the default — disables
everything).  The disabled mode is a hard no-op: no file is created, no
object is allocated in the engine round loop, and the measured overhead
on the engine hot path is under 2 % (``benchmarks/bench_telemetry.py``
gates this in CI).
"""

from .causality import (
    CausalLog,
    causal_records,
    causal_streams,
    lamport_timestamps,
)
from .core import (
    Span,
    Telemetry,
    configure,
    maybe_span,
    parse_setting,
    reset,
    resolve,
    shutdown,
)
from .events import EventRecorder, TraceEvent
from .critical import critical_path, lag_timeline, node_lag, slack_stats
from .export import chrome_trace, validate_chrome_trace
from .hist import HIST_SCHEMA, LogHistogram
from .profile import (
    SamplingProfiler,
    configure_profile,
    parse_profile_setting,
    reset_profile,
    resolve_profile,
)
from .resources import ResourceSnapshot, measure_span, snapshot, usage_block
from .rounds import ROUND_KEYS, RoundStream
from .sink import TELEMETRY_VERSION, JsonlSink, read_trace

__all__ = [
    "CausalLog",
    "EventRecorder",
    "HIST_SCHEMA",
    "JsonlSink",
    "LogHistogram",
    "ROUND_KEYS",
    "ResourceSnapshot",
    "RoundStream",
    "SamplingProfiler",
    "Span",
    "TELEMETRY_VERSION",
    "Telemetry",
    "TraceEvent",
    "causal_records",
    "causal_streams",
    "chrome_trace",
    "configure",
    "critical_path",
    "lag_timeline",
    "lamport_timestamps",
    "node_lag",
    "slack_stats",
    "configure_profile",
    "maybe_span",
    "measure_span",
    "parse_profile_setting",
    "parse_setting",
    "read_trace",
    "reset",
    "reset_profile",
    "resolve",
    "resolve_profile",
    "shutdown",
    "snapshot",
    "usage_block",
    "validate_chrome_trace",
]
