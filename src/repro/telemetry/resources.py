"""Process resource snapshots: RSS, CPU time, GC activity, heap peaks.

Where the spans in :mod:`repro.telemetry.core` answer *how long*, this
module answers *how much*: :func:`snapshot` captures the process's
resident set (``/proc/self/status`` on Linux, with a
``resource.getrusage`` peak fallback elsewhere), cumulative user/system
CPU time, total garbage-collection passes and — when the caller enabled
``tracemalloc`` — the traced-heap peak.

Two consumers:

* :class:`measure_span` wraps a span body and annotates the *delta*
  between entry and exit onto the span's ``resources`` attribute, so
  per-trial memory/CPU accounting rides the existing trace records
  (campaign and experiment trial spans use this);
* :func:`usage_block` returns the absolute ``{peak_rss_kb,
  cpu_seconds}`` pair that benchmark artifacts stamp into their
  ``environment`` block, which ``repro campaign compare`` then bands
  like any other timing metric (warnings beyond 10%).

Everything degrades gracefully: on platforms without ``/proc`` the RSS
fields are ``None`` and the CPU/GC fields still work — consumers must
treat every field as optional.
"""

from __future__ import annotations

import gc
import os
import sys
import tracemalloc
from typing import NamedTuple

__all__ = ["ResourceSnapshot", "measure_span", "snapshot", "usage_block"]

_PROC_STATUS = "/proc/self/status"


class ResourceSnapshot(NamedTuple):
    """One point-in-time reading of the process's resource usage."""

    rss_kb: int | None  # current resident set (None off-Linux)
    peak_rss_kb: int | None  # high-water resident set
    cpu_user_seconds: float
    cpu_system_seconds: float
    gc_collections: int  # cumulative passes across all generations
    tracemalloc_peak_kb: float | None  # None unless tracemalloc is tracing

    @property
    def cpu_seconds(self) -> float:
        """User + system CPU time."""
        return self.cpu_user_seconds + self.cpu_system_seconds


def _proc_status_kb() -> dict | None:
    """``{"VmRSS": kB, "VmHWM": kB}`` from ``/proc``, or ``None``."""
    try:
        values: dict[str, int] = {}
        with open(_PROC_STATUS, encoding="ascii") as handle:
            for line in handle:
                if line.startswith(("VmRSS:", "VmHWM:")):
                    name, _, rest = line.partition(":")
                    values[name] = int(rest.split()[0])
        return values or None
    except (OSError, ValueError, IndexError):
        return None


def _getrusage_peak_kb() -> int | None:
    """Peak RSS via ``resource.getrusage`` (kB; bytes on macOS)."""
    try:
        import resource as _resource

        peak = int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError, ValueError):
        return None
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        peak //= 1024
    return peak


def snapshot() -> ResourceSnapshot:
    """Capture the current process resource usage (never raises)."""
    vm = _proc_status_kb()
    rss = vm.get("VmRSS") if vm else None
    peak = vm.get("VmHWM") if vm else None
    if peak is None:
        peak = _getrusage_peak_kb()
    times = os.times()
    gc_total = sum(stat.get("collections", 0) for stat in gc.get_stats())
    traced_peak = None
    if tracemalloc.is_tracing():
        traced_peak = tracemalloc.get_traced_memory()[1] / 1024.0
    return ResourceSnapshot(
        rss_kb=rss,
        peak_rss_kb=peak,
        cpu_user_seconds=times.user,
        cpu_system_seconds=times.system,
        gc_collections=gc_total,
        tracemalloc_peak_kb=traced_peak,
    )


def delta_block(before: ResourceSnapshot, after: ResourceSnapshot) -> dict:
    """The span-attribute block for the interval ``before`` → ``after``.

    Deltas for the monotone counters (CPU, GC), absolutes for the
    point-in-time gauges (RSS, peaks) — a peak is meaningful on its own,
    a CPU total is not.
    """
    block: dict = {
        "cpu_seconds": round(after.cpu_seconds - before.cpu_seconds, 6),
        "gc_collections": after.gc_collections - before.gc_collections,
    }
    if after.rss_kb is not None:
        block["rss_kb"] = after.rss_kb
        if before.rss_kb is not None:
            block["rss_delta_kb"] = after.rss_kb - before.rss_kb
    if after.peak_rss_kb is not None:
        block["peak_rss_kb"] = after.peak_rss_kb
    if after.tracemalloc_peak_kb is not None:
        block["tracemalloc_peak_kb"] = round(after.tracemalloc_peak_kb, 1)
    return block


class measure_span:
    """Context manager annotating a span with its resource delta.

    ``span`` may be ``None`` (the disabled-telemetry case), in which
    case nothing is captured — the body pays one ``is None`` test, the
    same contract as :func:`~repro.telemetry.core.maybe_span`::

        with maybe_span(tel, "trial", key=key) as span, measure_span(span):
            run_the_trial()

    On exit the delta lands under the single ``resources`` attribute
    (one nested dict, keeping the span's attr namespace clean).
    """

    __slots__ = ("_span", "_before")

    def __init__(self, span) -> None:
        self._span = span
        self._before: ResourceSnapshot | None = None

    def __enter__(self):
        if self._span is not None:
            self._before = snapshot()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not None and self._before is not None:
            self._span.annotate(resources=delta_block(self._before, snapshot()))
        return False


def usage_block() -> dict:
    """The ``{peak_rss_kb, cpu_seconds}`` pair for artifact environments.

    Stamped by ``benchmarks/_common.emit`` under
    ``environment["resources"]``; ``repro campaign compare`` strips it
    from the environment-identity check and instead bands each field
    like a timing metric (see :mod:`repro.experiments.compare`).
    """
    snap = snapshot()
    return {
        "peak_rss_kb": snap.peak_rss_kb,
        "cpu_seconds": round(snap.cpu_seconds, 3),
    }
