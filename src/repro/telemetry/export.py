"""Chrome trace-event export: make any trace file Perfetto-clickable.

:func:`chrome_trace` converts the records of one trace (as returned by
:func:`~repro.telemetry.sink.read_trace`, or a live collector's lists)
into the Chrome trace-event JSON object format —
``{"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}``
— loadable in ``ui.perfetto.dev`` or ``chrome://tracing``.  The mapping
is **lossless**: every input record lands in the output somewhere.

* **span** records become complete (``"ph": "X"``) events on the
  ``spans`` process, placed at their real wall-clock offset (the
  collector stamps each span's ``start`` relative to the trace epoch;
  traces from before that field are laid out end-to-end instead).
  Attributes, counters, status and self time ride in ``args``.
* **round** records become counter (``"ph": "C"``) events on the
  ``rounds`` process, one track per stream, on a synthetic clock of
  :data:`ROUND_TICK_US` µs per protocol round (round records carry no
  wall time by design — the cross-backend bit-identity contract).  The
  numeric columns (live/frontier/messages/... plus the async engine's
  delayed/dropped/reordered extras) chart directly; the stream's
  non-numeric attributes (``backend``, ``mode``, ...) are emitted once
  as an instant event per stream.
* **event** records (the per-message recorder) become instant
  (``"ph": "i"``) events on the ``events`` process at their round tick.
* **causal** records (:mod:`~repro.telemetry.causality`) become flow
  events on the ``rounds`` process: each message edge is one
  ``"s"``/``"f"`` pair (flow start at the send round's tick, flow end —
  with ``"bp": "e"`` — at the receive round's tick) sharing a unique
  integer ``id``, so Perfetto draws the causal arrows over the round
  counters; halt edges become instant events on the same track.
* **hist**, **profile**, **summary**, **truncated** and **header**
  records are carried under ``otherData`` verbatim — histograms stay
  mergeable after export.

:func:`validate_chrome_trace` is the schema check the tests and the CI
campaign smoke run over exported artifacts.
"""

from __future__ import annotations

import json
from typing import Iterable

__all__ = [
    "ROUND_TICK_US",
    "chrome_trace",
    "export_text",
    "validate_chrome_trace",
]

#: Synthetic round clock: one protocol round = 1 ms of timeline.
ROUND_TICK_US = 1000

# One Chrome "process" per record family keeps the Perfetto UI grouped.
_PID_SPANS = 1
_PID_ROUNDS = 2
_PID_EVENTS = 3

_PROCESS_NAMES = {_PID_SPANS: "spans", _PID_ROUNDS: "rounds", _PID_EVENTS: "events"}

#: Round-record columns that chart as counter series.
_NON_SERIES_ROUND_KEYS = frozenset(("kind", "stream", "round"))

_VALID_PHASES = frozenset(("X", "C", "i", "M", "s", "f"))


def _micros(seconds: float) -> int:
    return int(round(float(seconds) * 1_000_000))


def _meta(pid: int, tid: int, name: str, args: dict) -> dict:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": args}


def chrome_trace(records: Iterable[dict]) -> dict:
    """The Chrome trace-event object for one trace's records."""
    events: list[dict] = []
    other: dict = {}
    used_pids: set[int] = set()
    stream_tids: dict[str, int] = {}
    fallback_ts = 0  # pre-`start` traces: lay spans out end-to-end
    flow_id = 0  # unique id shared by each causal "s"/"f" pair

    def stream_tid(stream: str) -> int:
        tid = stream_tids.get(stream)
        if tid is None:
            tid = stream_tids[stream] = len(stream_tids) + 1
            events.append(_meta(_PID_ROUNDS, tid, "thread_name", {"name": stream}))
        return tid

    for record in records:
        kind = record.get("kind")
        if kind == "span":
            used_pids.add(_PID_SPANS)
            duration = _micros(record.get("seconds", 0.0))
            start = record.get("start")
            if start is None:
                ts = fallback_ts
                fallback_ts += duration + 1
            else:
                ts = _micros(start)
            events.append(
                {
                    "name": record.get("path") or record.get("name", "?"),
                    "cat": "span",
                    "ph": "X",
                    "ts": ts,
                    "dur": duration,
                    "pid": _PID_SPANS,
                    "tid": 1,
                    "args": {
                        key: record[key]
                        for key in (
                            "name",
                            "depth",
                            "status",
                            "self_seconds",
                            "attrs",
                            "counters",
                        )
                        if key in record
                    },
                }
            )
        elif kind == "round":
            used_pids.add(_PID_ROUNDS)
            stream = str(record.get("stream", "rounds"))
            tid = stream_tids.get(stream)
            if tid is None:
                tid = stream_tids[stream] = len(stream_tids) + 1
                events.append(
                    _meta(_PID_ROUNDS, tid, "thread_name", {"name": stream})
                )
                # The stream's driver attributes (backend, mode, ...) are
                # constant per stream: carried once, losslessly.
                labels = {
                    key: value
                    for key, value in record.items()
                    if key not in _NON_SERIES_ROUND_KEYS
                    and not isinstance(value, (int, float))
                }
                if labels:
                    events.append(
                        {
                            "name": f"stream:{stream}",
                            "cat": "round",
                            "ph": "i",
                            "s": "t",
                            "ts": 0,
                            "pid": _PID_ROUNDS,
                            "tid": tid,
                            "args": labels,
                        }
                    )
            series = {
                key: value
                for key, value in record.items()
                if key not in _NON_SERIES_ROUND_KEYS
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            }
            events.append(
                {
                    "name": stream,
                    "cat": "round",
                    "ph": "C",
                    "ts": int(record.get("round", 0)) * ROUND_TICK_US,
                    "pid": _PID_ROUNDS,
                    "tid": tid,
                    "args": series,
                }
            )
        elif kind == "event":
            used_pids.add(_PID_EVENTS)
            events.append(
                {
                    "name": str(record.get("event", "event")),
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": int(record.get("round", 0)) * ROUND_TICK_US,
                    "pid": _PID_EVENTS,
                    "tid": 1,
                    "args": {
                        key: record[key]
                        for key in ("node", "peer", "round")
                        if record.get(key) is not None
                    },
                }
            )
        elif kind == "causal":
            used_pids.add(_PID_ROUNDS)
            stream = str(record.get("stream", "causal"))
            tid = stream_tid(stream)
            if record.get("edge") == "halt":
                events.append(
                    {
                        "name": "halt",
                        "cat": "causal",
                        "ph": "i",
                        "s": "t",
                        "ts": int(record.get("round", 0)) * ROUND_TICK_US,
                        "pid": _PID_ROUNDS,
                        "tid": tid,
                        "args": {"node": record.get("node")},
                    }
                )
            else:
                flow_id += 1
                args = {
                    key: record[key]
                    for key in (
                        "send", "recv", "count", "send_time", "arrive",
                        "recv_time", "fault",
                    )
                    if key in record
                }
                common = {
                    "name": "msg",
                    "cat": "causal",
                    "id": flow_id,
                    "pid": _PID_ROUNDS,
                    "tid": tid,
                }
                events.append(
                    {
                        **common,
                        "ph": "s",
                        "ts": int(record.get("send_round", 0)) * ROUND_TICK_US,
                        "args": args,
                    }
                )
                events.append(
                    {
                        **common,
                        "ph": "f",
                        "bp": "e",
                        "ts": int(record.get("recv_round", 0)) * ROUND_TICK_US,
                        "args": args,
                    }
                )
        elif kind == "hist":
            payload = {k: v for k, v in record.items() if k not in ("kind", "name")}
            other.setdefault("hists", {})[str(record.get("name", "?"))] = payload
        elif kind == "profile":
            other["profile"] = {k: v for k, v in record.items() if k != "kind"}
        elif kind == "summary":
            other["summary"] = {k: v for k, v in record.items() if k != "kind"}
        elif kind == "truncated":
            other["truncated_dropped"] = other.get("truncated_dropped", 0) + int(
                record.get("dropped", 0)
            )
        elif kind == "header":
            other["header"] = {k: v for k, v in record.items() if k != "kind"}
        else:  # unknown kinds survive the conversion too (losslessness)
            other.setdefault("unknown_records", []).append(record)

    names = [_meta(pid, 0, "process_name", {"name": _PROCESS_NAMES[pid]})
             for pid in sorted(used_pids)]
    events.sort(key=lambda event: (event.get("ts", 0), event["pid"], event["tid"]))
    return {
        "traceEvents": names + events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome_trace(payload: object) -> None:
    """Raise ``ValueError`` unless ``payload`` is a valid trace object.

    Checks the object format's envelope and, per event, the fields the
    trace-event schema requires for the phases this exporter emits
    (``X``/``C``/``i``/``M``/``s``/``f``) — plus JSON-serializability, so
    a payload that validates is guaranteed to load in Perfetto.  Flow
    events must pair up: every flow start (``"s"``) needs a flow end
    (``"f"``) with the same integer ``id`` and vice versa, and every
    non-metadata event needs a non-negative integer timestamp.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    flow_starts: set[int] = set()
    flow_ends: set[int] = set()
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where} has unsupported phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where} lacks a string name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(f"{where} lacks an integer {field}")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where} args is not an object")
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), int) or event["ts"] < 0:
            raise ValueError(f"{where} lacks a non-negative integer ts")
        if phase == "X" and (
            not isinstance(event.get("dur"), int) or event["dur"] < 0
        ):
            raise ValueError(f"{where} is a complete event without a valid dur")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"{where} is an instant event without a valid scope")
        if phase in ("s", "f"):
            flow = event.get("id")
            if not isinstance(flow, int) or isinstance(flow, bool):
                raise ValueError(f"{where} is a flow event without an integer id")
            (flow_starts if phase == "s" else flow_ends).add(flow)
    unpaired = flow_starts.symmetric_difference(flow_ends)
    if unpaired:
        raise ValueError(
            "flow events are not paired: ids "
            f"{sorted(unpaired)[:5]} lack a matching start/end"
        )
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trace payload is not JSON-serializable: {exc}") from exc


def export_text(records: Iterable[dict], fmt: str = "chrome") -> str:
    """Render records as ``chrome`` (one JSON object) or ``jsonl`` text.

    Both formats carry the same validated events; ``jsonl`` writes one
    trace event per line (the streaming-friendly shape; ``otherData``
    is chrome-format only).
    """
    payload = chrome_trace(records)
    validate_chrome_trace(payload)
    if fmt == "chrome":
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if fmt == "jsonl":
        return "\n".join(
            json.dumps(event, sort_keys=True) for event in payload["traceEvents"]
        ) + "\n"
    raise ValueError(f"unknown export format {fmt!r} (expected chrome or jsonl)")
