"""Trace reporting: the pure row-builders behind ``repro trace``.

Three views over a trace (a list of records from
:func:`~repro.telemetry.sink.read_trace` or a live
:class:`~repro.telemetry.core.Telemetry` collector):

* :func:`summarize_spans` — the span tree aggregated by path: calls,
  cumulative and self wall time, summed counters.  Self time is summed
  from the per-span ``self_seconds`` the collector records at close, so
  it is exact even for recursive/repeated paths;
* :func:`round_timeline` — the per-round convergence timeline of one
  (or every) round stream, in emit order;
* :func:`diff_summaries` — two span summaries aligned by path: call
  deltas are exact, time deltas are flagged against a relative
  tolerance (wall clock is noisy; counters are not);
* :func:`causality_table` — per-stream census of the causal message
  log (:mod:`~repro.telemetry.causality`): edges, delivered messages,
  halts, rounds, the maximum Lamport clock and the schedule-slack
  summary.

Everything here is a pure function of record lists — the CLI layer
only parses arguments and formats these rows.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "causality_table",
    "diff_summaries",
    "round_timeline",
    "summarize_spans",
]


def _span_records(records: Iterable[dict]) -> list[dict]:
    return [r for r in records if r.get("kind") == "span"]


def summarize_spans(records: Iterable[dict]) -> list[dict]:
    """Aggregate span records by path into the summary table.

    One row per distinct path, ordered lexicographically by path (a
    parent therefore always precedes its children).  ``errors`` counts
    spans that closed with ``status != "ok"``.
    """
    by_path: dict[str, dict] = {}
    order: list[str] = []
    for record in _span_records(records):
        path = record.get("path", record.get("name", "?"))
        row = by_path.get(path)
        if row is None:
            row = {
                "span": path,
                "depth": record.get("depth", 0),
                "calls": 0,
                "seconds": 0.0,
                "self_seconds": 0.0,
                "errors": 0,
                "counters": {},
            }
            by_path[path] = row
            order.append(path)
        row["calls"] += 1
        row["seconds"] += float(record.get("seconds", 0.0))
        row["self_seconds"] += float(record.get("self_seconds", 0.0))
        if record.get("status", "ok") != "ok":
            row["errors"] += 1
        for name, value in (record.get("counters") or {}).items():
            row["counters"][name] = row["counters"].get(name, 0) + value
    rows = [by_path[path] for path in sorted(order)]
    for row in rows:
        row["seconds"] = round(row["seconds"], 6)
        row["self_seconds"] = round(row["self_seconds"], 6)
    return rows


def round_timeline(
    records: Iterable[dict], stream: str | None = None
) -> list[dict]:
    """The round records (of ``stream``, or all), in emit order.

    Rows keep the shared :data:`~repro.telemetry.rounds.ROUND_KEYS`
    schema plus the ``stream`` label and any driver attributes (e.g.
    ``backend``).
    """
    rows = []
    for record in records:
        if record.get("kind") != "round":
            continue
        if stream is not None and record.get("stream") != stream:
            continue
        rows.append({k: v for k, v in record.items() if k != "kind"})
    return rows


def causality_table(
    records: Iterable[dict], stream: str | None = None
) -> list[dict]:
    """One census row per causal stream (or only ``stream``).

    ``rounds`` is the last round with any causal activity, ``lamport``
    the maximum Lamport clock (the causal depth of the run — invariant
    under delivery reordering), and the slack columns summarize how
    much schedule-delay headroom the delivered edges had (all zero for
    sync/batch/fault-free-FIFO logs).
    """
    from .causality import causal_records, causal_streams, lamport_timestamps
    from .critical import slack_stats

    rows = causal_records(records, stream)
    table = []
    for name in causal_streams(rows):
        mine = [row for row in rows if row["stream"] == name]
        edges = [row for row in mine if row["edge"] == "msg"]
        halts = [row for row in mine if row["edge"] == "halt"]
        last_round = max(
            [row["recv_round"] for row in edges]
            + [row["round"] for row in halts],
            default=0,
        )
        clocks = lamport_timestamps(mine)
        slack = slack_stats(mine)
        table.append(
            {
                "stream": name,
                "edges": len(edges),
                "messages": sum(row.get("count", 1) for row in edges),
                "halts": len(halts),
                "rounds": last_round,
                "lamport": max(clocks.values(), default=0),
                "slack_mean": slack["mean"],
                "slack_max": slack["max"],
            }
        )
    return table


def diff_summaries(
    baseline: Sequence[dict],
    current: Sequence[dict],
    tolerance: float = 0.25,
) -> list[dict]:
    """Align two span summaries by path and flag the differences.

    Statuses: ``ok`` (calls equal, time within ``tolerance``),
    ``slower`` / ``faster`` (time drifted beyond it), ``calls`` (call
    counts differ — a structural change), ``added`` / ``removed``
    (path present on one side only).  Time drift on paths under 1 ms is
    never flagged (pure noise).
    """
    base_by_path = {row["span"]: row for row in baseline}
    curr_by_path = {row["span"]: row for row in current}
    rows: list[dict] = []
    for path in list(dict.fromkeys([*base_by_path, *curr_by_path])):
        base, curr = base_by_path.get(path), curr_by_path.get(path)
        if base is None:
            rows.append(
                {"span": path, "status": "added", "calls": f"- -> {curr['calls']}",
                 "seconds": f"- -> {curr['seconds']}", "delta": None}
            )
            continue
        if curr is None:
            rows.append(
                {"span": path, "status": "removed", "calls": f"{base['calls']} -> -",
                 "seconds": f"{base['seconds']} -> -", "delta": None}
            )
            continue
        base_s, curr_s = float(base["seconds"]), float(curr["seconds"])
        delta = (curr_s - base_s) / base_s if base_s > 0 else 0.0
        if base["calls"] != curr["calls"]:
            status = "calls"
        elif max(base_s, curr_s) >= 1e-3 and abs(delta) > tolerance:
            status = "slower" if delta > 0 else "faster"
        else:
            status = "ok"
        rows.append(
            {
                "span": path,
                "status": status,
                "calls": f"{base['calls']} -> {curr['calls']}",
                "seconds": f"{base_s:.4f} -> {curr_s:.4f}",
                "delta": f"{delta:+.1%}",
            }
        )
    return rows
