"""Stdlib sampling profiler with span-path attribution.

:class:`SamplingProfiler` runs a daemon thread that wakes ``hz`` times a
second, grabs the profiled thread's current stack via
``sys._current_frames()`` and counts the collapsed stack — qualified by
the *currently open span path* of an attached
:class:`~repro.telemetry.core.Telemetry` object.  The result is a flame
table that answers "inside ``en.decompose/phase``, which frames burn
the self time?" — the attribution the kernel-shootout work needs
without any accelerator-specific profiler.

Design constraints:

* **stdlib only** — one thread, no signals (``setitimer`` profilers
  can't run off the main thread and break under pytest), no C
  extension;
* **nothing on the hot path** — the profiled code is never touched;
  the sampler reads its frames from the outside, so the overhead is
  bounded by the sampling rate, not the workload's call rate
  (``benchmarks/bench_telemetry.py`` gates sampling-on at ≤ 1.10x and
  asserts bit-identical decompositions);
* **opt-in**, resolved exactly like the trace setting: explicit
  argument > ``--profile`` flag (:func:`configure_profile`) >
  ``REPRO_PROFILE`` environment variable, read once per process
  (:func:`reset_profile` re-reads in tests).

``REPRO_PROFILE`` accepts a sampling rate in Hz (``REPRO_PROFILE=97``),
``on`` for the default rate, or ``off``.  The default 97 Hz is prime so
the sampler does not beat against periodic work.

Span attribution reads the telemetry object's open-span stack from the
sampler thread without locking: list reads are atomic under the GIL and
a pop racing the read is caught, so the worst case is one sample
attributed to the parent span — acceptable for a statistical profile.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import TYPE_CHECKING

from ..errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import Telemetry

__all__ = [
    "DEFAULT_HZ",
    "SamplingProfiler",
    "configure_profile",
    "parse_profile_setting",
    "reset_profile",
    "resolve_profile",
]

#: Default sampling rate (prime, see module docstring).
DEFAULT_HZ = 97.0

#: Highest accepted rate: beyond ~1 kHz the GIL contention of the
#: sampler itself starts to dominate what it measures.
MAX_HZ = 2000.0

#: Stack frames kept per sample (deep recursions are truncated at the
#: root end; the leaf — where self time is attributed — is always kept).
MAX_STACK_DEPTH = 128

_OFF_SETTINGS = frozenset(("", "0", "off", "false", "no", "none"))
_ON_SETTINGS = frozenset(("on", "true", "yes"))

#: Rows a profile sink record keeps (the flame table is long-tailed).
_RECORD_ROWS = 200


def parse_profile_setting(setting: str) -> float | None:
    """``off``/empty → ``None``; ``on`` → the default rate; else Hz."""
    value = setting.strip().lower()
    if value in _OFF_SETTINGS:
        return None
    if value in _ON_SETTINGS:
        return DEFAULT_HZ
    try:
        hz = float(value)
    except ValueError:
        raise ParameterError(
            f"bad profile setting {setting!r} (expected a sampling rate in "
            "Hz, 'on', or 'off')"
        ) from None
    if not 0 < hz <= MAX_HZ:
        raise ParameterError(
            f"profile rate must be in (0, {MAX_HZ:g}] Hz, got {hz:g}"
        )
    return hz


def _frame_label(code) -> str:
    """``module:function`` — short, stable across checkouts."""
    stem = os.path.basename(code.co_filename)
    if stem.endswith(".py"):
        stem = stem[:-3]
    return f"{stem}:{code.co_name}"


class SamplingProfiler:
    """Samples one thread's stack at ``hz`` and folds the counts.

    Use as a context manager, or :meth:`start` / :meth:`stop`
    explicitly.  :meth:`start` binds the profiler to the *calling*
    thread — start it from the thread whose work you want attributed.
    """

    def __init__(self, hz: float = DEFAULT_HZ, telemetry: "Telemetry | None" = None) -> None:
        if not 0 < hz <= MAX_HZ:
            raise ParameterError(
                f"profile rate must be in (0, {MAX_HZ:g}] Hz, got {hz:g}"
            )
        self.hz = float(hz)
        self.telemetry = telemetry
        #: ``(span_path, folded_stack) -> samples`` (stack outermost-first).
        self.samples: dict[tuple[str, tuple[str, ...]], int] = {}
        self.sample_count = 0
        self._thread: threading.Thread | None = None
        self._stop_event: threading.Event | None = None
        self._target_ident: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        """Begin sampling the calling thread."""
        if self._thread is not None:
            raise ParameterError("profiler is already running")
        self._target_ident = threading.get_ident()
        self._stop_event = threading.Event()
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profile", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (idempotent); counts remain readable."""
        if self._thread is None:
            return
        assert self._stop_event is not None
        self._stop_event.set()
        self._thread.join()
        self._thread = None
        self._stop_event = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Sampler thread
    # ------------------------------------------------------------------
    def _sample_loop(self) -> None:
        interval = 1.0 / self.hz
        stop = self._stop_event
        assert stop is not None
        while not stop.wait(interval):
            self._take_sample()

    def _take_sample(self) -> None:
        frame = sys._current_frames().get(self._target_ident)
        if frame is None:
            return
        labels: list[str] = []
        while frame is not None and len(labels) < MAX_STACK_DEPTH:
            labels.append(_frame_label(frame.f_code))
            frame = frame.f_back
        labels.reverse()  # outermost first, leaf last
        span_path = ""
        telemetry = self.telemetry
        if telemetry is not None:
            open_spans = telemetry._stack
            if open_spans:
                try:
                    span_path = open_spans[-1].path
                except IndexError:  # popped between the check and the read
                    span_path = ""
        key = (span_path, tuple(labels))
        self.samples[key] = self.samples.get(key, 0) + 1
        self.sample_count += 1

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def flame_table(self) -> list[dict]:
        """Collapsed flame rows: self/cumulative samples per span-qualified frame.

        ``self`` counts samples whose *leaf* is the frame; ``cum``
        counts samples with the frame anywhere on the stack (each frame
        at most once per sample, so recursion does not inflate it).
        Sorted by self then cumulative samples, descending.
        """
        self_counts: dict[tuple[str, str], int] = {}
        cum_counts: dict[tuple[str, str], int] = {}
        for (span, frames), count in self.samples.items():
            if not frames:
                continue
            leaf = (span, frames[-1])
            self_counts[leaf] = self_counts.get(leaf, 0) + count
            for frame in dict.fromkeys(frames):
                key = (span, frame)
                cum_counts[key] = cum_counts.get(key, 0) + count
        rows = [
            {
                "span": span or "-",
                "frame": frame,
                "self": self_counts.get((span, frame), 0),
                "cum": cum,
            }
            for (span, frame), cum in cum_counts.items()
        ]
        rows.sort(key=lambda row: (-row["self"], -row["cum"], row["span"], row["frame"]))
        return rows

    def collapsed(self) -> list[str]:
        """``flamegraph.pl``-style folded lines: ``span;f1;f2 count``."""
        lines = []
        for (span, frames), count in sorted(self.samples.items()):
            parts = (span, *frames) if span else frames
            lines.append(";".join(parts) + f" {count}")
        return lines

    def record(self) -> dict:
        """The ``{"kind": "profile"}`` sink record (top flame rows)."""
        return {
            "kind": "profile",
            "hz": self.hz,
            "samples": self.sample_count,
            "rows": self.flame_table()[:_RECORD_ROWS],
        }


# --------------------------------------------------------------------------
# Ambient resolution (CLI flag > environment > disabled) — the profile
# twin of repro.telemetry.core's trace resolution.

_ENV_UNREAD = object()
_ambient_hz: float | None = None
_from_env: "float | None | object" = _ENV_UNREAD


def configure_profile(hz: float | None) -> float | None:
    """Install the process-global sampling rate (the ``--profile`` flag)."""
    global _ambient_hz
    _ambient_hz = hz
    return hz


def resolve_profile(hz: float | None = None) -> float | None:
    """The active rate: explicit arg > :func:`configure_profile` > env.

    ``None`` means profiling is off.  ``REPRO_PROFILE`` is read once
    per process and cached.
    """
    if hz is not None:
        return hz
    if _ambient_hz is not None:
        return _ambient_hz
    global _from_env
    if _from_env is _ENV_UNREAD:
        _from_env = parse_profile_setting(os.environ.get("REPRO_PROFILE", "off"))
    return _from_env  # type: ignore[return-value]


def reset_profile() -> None:
    """Drop the ambient profile state (test isolation hook)."""
    global _ambient_hz, _from_env
    _ambient_hz = None
    _from_env = _ENV_UNREAD
