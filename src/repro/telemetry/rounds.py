"""Per-round metrics streams: one identically-keyed row per round.

A :class:`RoundStream` subscribes to an engine —
``SyncNetwork(rounds=...)`` or ``BatchEngine(..., rounds=...)`` — and
emits one record per executed round with the keys of :data:`ROUND_KEYS`:

* ``round`` — the global round number (1-based; the sync engine's
  round-0 ``on_start`` flush is recorded only if it carried traffic);
* ``live`` — nodes not yet halted at the end of the round;
* ``frontier`` — distinct vertices that sent at least one message;
* ``messages`` / ``words`` — traffic sent this round;
* ``delivered`` — messages handed to live receivers this round;
* ``halts`` — nodes that halted this round.

Traffic columns are **deltas of the engine's own**
:class:`~repro.distributed.metrics.NetworkStats` totals, so the stream
can never disagree with the stats the equivalence tests pin — and the
sync/batch backends therefore produce row-identical streams on a seeded
run (``tests/telemetry/test_rounds.py``), differing only in the
``backend`` attribute the driver stamps on the stream.

Emission points differ per engine: the sync engine emits at the end of
each round's outbox flush; the batch engine emits each round lazily at
the *next* ``begin_round()`` plus an explicit ``finish_rounds()`` for
the last round (the driver calls it once after the phase loop) —
:meth:`RoundStream.end_round` is idempotent per round, so mixed calls
never double-emit.

Per-round **wall time** never appears in the records — it would differ
across backends and break the row-identity contract above.  Instead,
each stream feeds the interval between consecutive emissions into the
trace's ``<stream>.round_seconds``
:class:`~repro.telemetry.hist.LogHistogram` (for the batch engine's
lazy flush that interval is exactly one round's compute), so p50/p99
round latency survives as a mergeable histogram while the rows stay
bit-comparable.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..distributed.metrics import NetworkStats
    from .core import Telemetry

__all__ = ["ROUND_KEYS", "RoundStream"]

#: The shared per-round schema, identical across backends.
ROUND_KEYS = ("round", "live", "frontier", "messages", "words", "delivered", "halts")


class RoundStream:
    """One protocol run's per-round metrics (see module docstring)."""

    __slots__ = (
        "stream",
        "attrs",
        "records",
        "_telemetry",
        "_prev_messages",
        "_prev_words",
        "_prev_delivered",
        "_frontier",
        "_halts",
        "_flushed_round",
        "_extra_names",
        "_extras",
        "_hist",
        "_last_emit",
    )

    def __init__(self, telemetry: "Telemetry", stream: str, attrs: dict) -> None:
        self.stream = stream
        self.attrs = attrs
        self.records: list[dict] = []
        self._telemetry = telemetry
        self._prev_messages = 0
        self._prev_words = 0
        self._prev_delivered = 0
        self._frontier = 0
        self._halts = 0
        self._flushed_round = -1
        self._extra_names: tuple = ()
        self._extras: dict = {}
        self._hist = None  # lazy: created at the first emitted round
        self._last_emit = perf_counter()

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def enable_extras(self, *names: str) -> None:
        """Extend the per-round schema with engine-specific columns.

        The async engine adds its adversary counters (``delayed`` /
        ``dropped`` / ``reordered``) this way — but only on runs where a
        non-FIFO schedule or fault plan is active, so FIFO fault-free
        async streams stay row-identical to the sync engine's (the
        bit-identity contract strips only the ``backend`` attribute).
        """
        self._extra_names = names
        self._extras = dict.fromkeys(names, 0)

    def note_extras(self, **counts: int) -> None:
        """Accumulate extra-column values for the current round."""
        for name, value in counts.items():
            self._extras[name] = self._extras.get(name, 0) + value
    def note_frontier(self, senders: int) -> None:
        """Record ``senders`` distinct sending vertices this round."""
        self._frontier += senders

    def note_halts(self, count: int) -> None:
        """Record ``count`` nodes newly halted this round."""
        self._halts += count

    def end_round(self, round_number: int, stats: "NetworkStats", live: int) -> None:
        """Emit the row for ``round_number`` (idempotent per round).

        ``stats`` is the engine's cumulative accumulator — the row's
        traffic columns are the deltas since the previous emitted round.
        """
        if round_number <= self._flushed_round:
            return
        now = perf_counter()
        elapsed = now - self._last_emit
        self._last_emit = now
        messages = stats.messages_sent - self._prev_messages
        words = stats.words_sent - self._prev_words
        delivered = stats.messages_delivered - self._prev_delivered
        frontier, halts = self._frontier, self._halts
        extras = dict(self._extras)
        self._prev_messages = stats.messages_sent
        self._prev_words = stats.words_sent
        self._prev_delivered = stats.messages_delivered
        self._frontier = 0
        self._halts = 0
        if self._extra_names:
            self._extras = dict.fromkeys(self._extra_names, 0)
        self._flushed_round = round_number
        if round_number == 0 and not (
            messages or words or delivered or frontier or halts
            or any(extras.values())
        ):
            # The sync engine's on_start flush when nothing was sent —
            # the batch engine has no round 0 at all.
            return
        record = {
            "kind": "round",
            "stream": self.stream,
            **self.attrs,
            "round": round_number,
            "live": live,
            "frontier": frontier,
            "messages": messages,
            "words": words,
            "delivered": delivered,
            "halts": halts,
        }
        if self._extra_names:
            record.update(extras)
        if self._hist is None:
            self._hist = self._telemetry.histogram(f"{self.stream}.round_seconds")
        self._hist.record(elapsed)
        # Records land in both the per-stream view (used by the
        # cross-backend equality checks) and the shared collector; both
        # respect the telemetry object's bound.
        if len(self.records) < self._telemetry.limit:
            self.records.append(record)
        else:
            self._telemetry.truncated = True
        self._telemetry._keep(self._telemetry.rounds, record)
