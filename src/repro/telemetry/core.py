"""Telemetry core: hierarchical spans, the collector, opt-in resolution.

A :class:`Telemetry` object is one trace: a bounded in-memory collector
of span/round/event records, optionally mirrored to a
:class:`~repro.telemetry.sink.JsonlSink`.  Spans nest lexically::

    with telemetry.span("oracle.build", n=n) as build:
        with telemetry.span("scale", radius=radius) as scale:
            scale.add("clusters", tables.num_clusters)

Each closed span becomes one record carrying its slash-joined ``path``
(``oracle.build/scale``), wall-clock ``seconds``, ``self_seconds``
(seconds minus direct children), a ``status`` (``"error"`` when the
body raised — the span still closes, exception safety is pinned by
``tests/telemetry/test_spans.py``), plus attributes and counters.

Resolution order for the *ambient* trace — what instrumented call sites
get from :func:`resolve` when no explicit object is passed:

1. the process-global object installed by :func:`configure` (the CLI's
   ``--trace`` flag);
2. the ``REPRO_TELEMETRY`` environment variable, read **once** per
   process (``off``/empty → disabled, ``mem`` → in-memory only,
   anything else → a JSONL sink at that path);
3. otherwise ``None`` — the disabled mode, in which every instrumented
   site reduces to one ``is None`` test.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import TYPE_CHECKING

from ..errors import ParameterError
from .causality import CausalLog
from .hist import LogHistogram
from .rounds import RoundStream
from .sink import JsonlSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .events import EventRecorder, TraceEvent

__all__ = [
    "Span",
    "Telemetry",
    "configure",
    "maybe_span",
    "parse_setting",
    "reset",
    "resolve",
    "shutdown",
]

#: Default in-memory record cap (spans and rounds each).
DEFAULT_COLLECTOR_LIMIT = 100_000

_OFF_SETTINGS = frozenset(("", "0", "off", "false", "no", "none"))


class Span:
    """One timed region; created via :meth:`Telemetry.span`.

    Use as a context manager.  ``add`` accumulates counters,
    ``annotate`` attaches attributes; both may be called from inside
    the body.  The span closes (and is recorded) even when the body
    raises — ``status`` is then ``"error"`` and the exception type is
    attached as the ``error`` attribute.
    """

    __slots__ = (
        "name",
        "path",
        "depth",
        "attrs",
        "counters",
        "status",
        "seconds",
        "_telemetry",
        "_start",
        "_children_seconds",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict) -> None:
        self.name = name
        self.path = name
        self.depth = 0
        self.attrs = attrs
        self.counters: dict[str, float] = {}
        self.status = "ok"
        self.seconds = 0.0
        self._telemetry = telemetry
        self._start = 0.0
        self._children_seconds = 0.0

    def add(self, counter: str, amount: float = 1) -> None:
        """Accumulate ``amount`` into ``counter``."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def annotate(self, **attrs) -> None:
        """Attach structured attributes to the span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._telemetry._push(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = perf_counter() - self._start
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._telemetry._pop(self)
        return False


class _NullSpan:
    """The disabled-mode span context: enters to ``None``, records nothing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def maybe_span(telemetry: "Telemetry | None", name: str, /, **attrs):
    """``telemetry.span(...)`` or a shared no-op context when disabled.

    The returned context yields the :class:`Span` (so the body can call
    ``add``/``annotate``) or ``None`` in disabled mode — guard with
    ``if span is not None`` before touching it.
    """
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.span(name, **attrs)


class Telemetry:
    """One trace: a span stack, bounded collectors, an optional sink."""

    def __init__(
        self,
        sink: JsonlSink | None = None,
        limit: int = DEFAULT_COLLECTOR_LIMIT,
    ) -> None:
        if limit < 1:
            raise ParameterError(f"collector limit must be >= 1, got {limit}")
        self.sink = sink
        self.limit = limit
        self.spans: list[dict] = []  # closed-span records, close order
        self.rounds: list[dict] = []  # round records, emit order
        self.causal: list[dict] = []  # causal edge/halt records, emit order
        self.events = 0  # mirrored EventRecorder events (count only)
        self.hists: dict[str, LogHistogram] = {}  # named, creation order
        self.truncated = False
        self.epoch = perf_counter()  # span starts are offsets from here
        self._stack: list[Span] = []
        self._closed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_setting(cls, setting: str) -> "Telemetry | None":
        """Build from a ``REPRO_TELEMETRY``-style setting (see module doc)."""
        return parse_setting(setting)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, /, **attrs) -> Span:
        """Open a child span of the innermost open span (context manager)."""
        return Span(self, name, attrs)

    def _push(self, span: Span) -> None:
        if self._stack:
            parent = self._stack[-1]
            span.path = f"{parent.path}/{span.name}"
            span.depth = parent.depth + 1
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Close any younger spans first (leaked by a non-lexical exit);
        # normal with-blocks always find ``span`` on top.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1]._children_seconds += span.seconds
        record = {
            "kind": "span",
            "name": span.name,
            "path": span.path,
            "depth": span.depth,
            "status": span.status,
            # Offset from the trace epoch — what places the span on a
            # real timeline in `repro trace export` Chrome output.
            "start": round(span._start - self.epoch, 9),
            "seconds": round(span.seconds, 9),
            "self_seconds": round(
                max(span.seconds - span._children_seconds, 0.0), 9
            ),
            "attrs": span.attrs,
            "counters": span.counters,
        }
        self._keep(self.spans, record)

    # ------------------------------------------------------------------
    # Round streams and events
    # ------------------------------------------------------------------
    def round_stream(self, stream: str, **attrs) -> RoundStream:
        """A per-round metrics stream feeding this trace (see rounds.py)."""
        return RoundStream(self, stream, attrs)

    def causal_log(self, stream: str) -> "CausalLog":
        """A causal parent-edge log feeding this trace (see causality.py)."""
        return CausalLog(self, stream)

    def histogram(self, name: str, **kwargs) -> LogHistogram:
        """The named mergeable histogram of this trace (first use creates).

        ``kwargs`` (``min_value``/``buckets_per_octave``) apply only on
        creation; later callers get the existing histogram regardless —
        boundaries must stay uniform for shards to merge exactly.
        """
        hist = self.hists.get(name)
        if hist is None:
            hist = LogHistogram(**kwargs)
            self.hists[name] = hist
        return hist

    def event_recorder(self, **kwargs) -> "EventRecorder":
        """An :class:`EventRecorder` mirroring its events into this trace."""
        from .events import EventRecorder

        return EventRecorder(telemetry=self, **kwargs)

    def record_event(self, event: "TraceEvent") -> None:
        """Mirror one kept tracer event to the sink (count in-memory)."""
        self.events += 1
        if self.sink is not None:
            self.sink.write(
                {
                    "kind": "event",
                    "round": event.round,
                    "event": event.kind,
                    "node": event.node,
                    "peer": event.peer,
                }
            )

    def _keep(self, collector: list[dict], record: dict) -> None:
        if len(collector) >= self.limit:
            self.truncated = True
        else:
            collector.append(record)
        if self.sink is not None:
            self.sink.write(record)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def total_seconds(self, name_or_path: str) -> float:
        """Summed wall time of closed spans named (or pathed) so."""
        return sum(
            record["seconds"]
            for record in self.spans
            if record["name"] == name_or_path or record["path"] == name_or_path
        )

    def block(self) -> dict:
        """The ``telemetry`` block stamped into JSON artifacts.

        Aggregated per-path span rows plus collector totals and the
        sink path, so an artifact links to its trace file.
        """
        from .causality import causal_streams
        from .report import summarize_spans

        return {
            "version": "en16.telemetry.v1",
            "sink": str(self.sink.path) if self.sink is not None else None,
            "spans": summarize_spans(self.spans),
            "rounds": len(self.rounds),
            "events": self.events,
            "hists": {name: hist.summary() for name, hist in self.hists.items()},
            "causal": {
                "records": len(self.causal),
                "streams": causal_streams(self.causal),
                "edges": sum(
                    1 for record in self.causal if record.get("edge") == "msg"
                ),
                "halts": sum(
                    1 for record in self.causal if record.get("edge") == "halt"
                ),
            },
            "truncated": self.truncated
            or (self.sink.truncated if self.sink is not None else False),
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush the summary record and close the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.sink is not None:
            # Histograms flush at close (they aggregate, so there is no
            # natural per-record emission point), each as one lossless —
            # still mergeable — "hist" record ahead of the summary.
            for name, hist in self.hists.items():
                self.sink.write({"kind": "hist", "name": name, **hist.to_dict()})
            # Per-kind counts of every record *offered* to the sink
            # (dropped-past-the-bound writes included), so a truncated
            # trace is diagnosable from its own summary line.
            self.sink.write(
                {
                    "kind": "summary",
                    "spans": len(self.spans),
                    "rounds": len(self.rounds),
                    "events": self.events,
                    "hists": len(self.hists),
                    "causal": len(self.causal),
                    "kinds": dict(sorted(self.sink.kind_counts.items())),
                }
            )
            self.sink.close()


# --------------------------------------------------------------------------
# Ambient resolution (CLI flag > environment > disabled)

_ENV_UNREAD = object()
_ambient: Telemetry | None = None
_from_env: "Telemetry | None | object" = _ENV_UNREAD


def parse_setting(setting: str) -> Telemetry | None:
    """``off``/empty → ``None``, ``mem`` → in-memory, else a JSONL sink."""
    value = setting.strip()
    if value.lower() in _OFF_SETTINGS:
        return None
    if value.lower() == "mem":
        return Telemetry()
    return Telemetry(sink=JsonlSink(value))


def configure(telemetry: Telemetry | None) -> Telemetry | None:
    """Install the process-global ambient trace (the CLI ``--trace`` path)."""
    global _ambient
    _ambient = telemetry
    return telemetry


def resolve(telemetry: Telemetry | None = None) -> Telemetry | None:
    """The active trace: explicit arg > :func:`configure` > environment.

    Returns ``None`` in disabled mode.  The environment variable is
    read once per process and cached (call :func:`reset` in tests to
    re-read it).
    """
    if telemetry is not None:
        return telemetry
    if _ambient is not None:
        return _ambient
    global _from_env
    if _from_env is _ENV_UNREAD:
        _from_env = parse_setting(os.environ.get("REPRO_TELEMETRY", "off"))
    return _from_env  # type: ignore[return-value]


def shutdown() -> None:
    """Close and forget the ambient trace (CLI end-of-run hook)."""
    global _ambient, _from_env
    if _ambient is not None:
        _ambient.close()
    if isinstance(_from_env, Telemetry):
        _from_env.close()
    _ambient = None
    _from_env = _ENV_UNREAD


def reset() -> None:
    """Drop all ambient state without flushing (test isolation hook)."""
    global _ambient, _from_env
    _ambient = None
    _from_env = _ENV_UNREAD
