"""The bounded append-only JSONL trace sink.

Same durability posture as the campaign journal
(:mod:`repro.experiments.checkpoint`): one JSON object per line, a
schema-version header line first, whole-line appends so a crash leaves
at most one torn trailing line, and a reader that skips unparseable
lines instead of failing.  Two deliberate differences:

* **no fsync per record** — telemetry is high-volume and advisory; a
  lost tail after a crash costs observability, not correctness;
* **bounded** — after ``limit`` records the sink stops writing and
  :meth:`JsonlSink.close` appends a single ``{"kind": "truncated"}``
  marker with the drop count, so a trace file is always a *prefix* of
  the run (mirroring :class:`~repro.telemetry.events.EventRecorder`).

The file handle is opened lazily in append mode on the first write, so
a configured-but-silent process never creates an empty file, and forked
campaign workers inheriting the handle interleave whole lines (each
write is one flushed line; a torn line is tolerated by the reader).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import IO, Iterable

from ..errors import ParameterError

__all__ = ["TELEMETRY_VERSION", "JsonlSink", "read_trace"]

#: Bumped when the record schema changes incompatibly.
TELEMETRY_VERSION = "en16.telemetry.v1"

#: Default record cap per sink (spans + rounds + events combined).
DEFAULT_SINK_LIMIT = 250_000


class JsonlSink:
    """Bounded append-only JSONL sink for telemetry records."""

    def __init__(self, path: pathlib.Path | str, limit: int = DEFAULT_SINK_LIMIT):
        if limit < 1:
            raise ParameterError(f"sink limit must be >= 1, got {limit}")
        self.path = pathlib.Path(path)
        self.limit = limit
        self.written = 0
        self.dropped = 0
        #: Records *offered* per kind — dropped writes included, so a
        #: truncated trace's summary still says what the run produced.
        self.kind_counts: dict[str, int] = {}
        self._handle: IO[str] | None = None

    def _file(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = self.path.open("a", encoding="utf8")
            if fresh:
                self._emit({"kind": "header", "telemetry_version": TELEMETRY_VERSION,
                            "created_unix": round(time.time(), 3)})
        return self._handle

    def _emit(self, record: dict) -> None:
        handle = self._file()
        handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
            + "\n"
        )
        handle.flush()

    def write(self, record: dict) -> None:
        """Append one record, or silently drop it past the bound."""
        kind = str(record.get("kind", "unknown"))
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if self.written >= self.limit:
            self.dropped += 1
            return
        self._emit(record)
        self.written += 1

    @property
    def truncated(self) -> bool:
        """Whether the bound was hit (some records were dropped)."""
        return self.dropped > 0

    def close(self) -> None:
        """Write the truncation marker (if any drops) and close the file."""
        if self.dropped and self._handle is not None:
            self._emit({"kind": "truncated", "dropped": self.dropped})
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_trace(
    path: pathlib.Path | str,
) -> tuple[dict | None, list[dict]]:
    """``(header, records)`` of a trace file; torn-tail tolerant.

    Lines that fail to parse — the torn tail of a killed writer, or an
    interleaved fragment from a forked worker — are skipped, exactly as
    the campaign journal reader does.  ``header`` is ``None`` when the
    file carries no recognisable header line (records are still
    returned so a damaged trace stays inspectable).
    """
    header: dict | None = None
    records: list[dict] = []
    with pathlib.Path(path).open("r", encoding="utf8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if not isinstance(payload, dict):
                continue
            if payload.get("kind") == "header":
                if header is None:
                    header = payload
                continue
            records.append(payload)
    return header, records


def records_of_kind(records: Iterable[dict], kind: str) -> list[dict]:
    """Filter helper: the records whose ``kind`` field equals ``kind``."""
    return [record for record in records if record.get("kind") == kind]
