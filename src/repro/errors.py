"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses exist for
the main failure categories: malformed graphs, simulator misuse, CONGEST
bandwidth violations and invalid decompositions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples: referencing a vertex outside ``range(n)``, adding a self loop
    to a simple graph, or requesting the diameter of a disconnected graph.
    """


class SimulationError(ReproError):
    """Raised when the distributed simulator is misused.

    Examples: sending a message to a non-neighbour, sending after halting,
    or exceeding the configured maximum number of rounds.
    """


class CongestViolation(SimulationError):
    """Raised when a message exceeds the CONGEST bandwidth budget.

    The CONGEST model allows ``O(log n)`` bits per edge per round; the
    simulator measures messages in machine *words* (a word holds an integer
    of magnitude ``poly(n)`` or one float) and raises this error when a
    message is wider than the configured word budget.
    """


class DecompositionError(ReproError):
    """Raised when a network decomposition fails validation.

    Examples: the clusters do not partition the vertex set, a cluster
    exceeds the promised diameter, or two adjacent clusters share a colour.
    """


class ParameterError(ReproError, ValueError):
    """Raised for invalid algorithm parameters (``k``, ``c``, ``beta`` ...).

    Inherits from :class:`ValueError` so generic callers that guard against
    bad arguments with ``except ValueError`` keep working.
    """
