"""repro — reproduction of *Distributed Strong Diameter Network Decomposition*.

Elkin & Neiman, PODC 2016 (arXiv:1602.05437): the first distributed
algorithm computing a **strong** ``(O(log n), O(log n))`` network
decomposition in ``O(log² n)`` rounds, via exponential random shifts.

Quickstart
----------
>>> from repro import decompose, erdos_renyi
>>> graph = erdos_renyi(200, 0.03, seed=1)
>>> decomposition, trace = decompose(graph, k=4)
>>> decomposition.validate(max_diameter=2 * 4 - 2, strong=True)
>>> decomposition.num_colors <= trace.nominal_phases
True

Package map
-----------
* :mod:`repro.graphs` — graph kernel, generators, metrics (substrate);
* :mod:`repro.distributed` — synchronous LOCAL/CONGEST simulator (substrate);
* :mod:`repro.engine` — columnar batch round engine: the same round
  semantics over flat state arrays, bit-identical to the simulator,
  built for million-node runs (``backend="batch"``);
* :mod:`repro.core` — the paper's algorithms (Theorems 1–3, centralized and
  distributed);
* :mod:`repro.baselines` — Linial–Saks, Miller–Peng–Xu, deterministic ball
  carving;
* :mod:`repro.applications` — MIS, (Δ+1)-colouring and maximal matching on
  top of decompositions (the paper's §1.1 motivation);
* :mod:`repro.analysis` — quality reports, Monte-Carlo lemma checks, theory
  tables;
* :mod:`repro.experiments` — experiment orchestration runtime (trial specs,
  parallel runner, content-addressed result cache, scenario registry).
"""

from . import analysis, applications, baselines, core, distributed, experiments, graphs
from .core.decomposition import Cluster, NetworkDecomposition
from .core.distributed_en import decompose_distributed
from .core.elkin_neiman import decompose
from .errors import (
    CongestViolation,
    DecompositionError,
    GraphError,
    ParameterError,
    ReproError,
    SimulationError,
)
from .graphs import (
    Graph,
    GraphBuilder,
    erdos_renyi,
    grid_graph,
    path_graph,
    random_connected,
)
from .rng import DEFAULT_SEED

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "CongestViolation",
    "DEFAULT_SEED",
    "DecompositionError",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "NetworkDecomposition",
    "ParameterError",
    "ReproError",
    "SimulationError",
    "__version__",
    "analysis",
    "applications",
    "baselines",
    "core",
    "decompose",
    "decompose_distributed",
    "distributed",
    "erdos_renyi",
    "experiments",
    "graphs",
    "grid_graph",
    "path_graph",
    "random_connected",
]
