"""Module entry point: ``python -m repro``.

``serve --workers N`` spawns worker processes via the multiprocessing
``spawn`` context.  CPython's spawn bootstrap deliberately skips
re-running ``*.__main__`` modules in children, so ``python -m repro``
is spawn-safe either way — the ``__name__`` guard is kept as the
conventional belt-and-braces for any other way this file gets imported.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
